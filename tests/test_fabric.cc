/**
 * @file
 * Tests for the distributed-sweep fabric (src/fabric/): the wire
 * protocol round-trips and rejects version skew, the Dealer's
 * fault-tolerance state machine (worker death mid-shard re-deals,
 * duplicate completions are idempotent, an all-dead fleet reports
 * failure instead of hanging), the WorkerHandler end to end against a
 * real SimService, and the sequencer's chunk streaming that carries
 * fabric rows without reordering anyone else's responses.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "driver/experiment.hh"
#include "driver/result_store.hh"
#include "fabric/dealer.hh"
#include "fabric/handler.hh"
#include "fabric/protocol.hh"
#include "svc/json.hh"
#include "svc/sequencer.hh"
#include "svc/sim_request.hh"
#include "svc/sim_response.hh"
#include "svc/sim_service.hh"

namespace momsim::fabric
{
namespace
{

svc::JsonValue
mustParse(const std::string &line)
{
    svc::JsonValue doc;
    std::string error;
    EXPECT_TRUE(svc::parseJson(line, doc, error)) << line << ": "
                                                  << error;
    return doc;
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

TEST(FabricProtocol, PongRoundTrips)
{
    Pong pong;
    pong.id = "p1";
    pong.version = fabricVersionString();
    pong.uptimeMs = 123456789ull;
    pong.inFlight = 3;
    pong.pendingPoints = 42;
    pong.pointsSimulated = 1000;
    pong.pointsDeduped = 250;
    pong.memCacheHits = 70;
    pong.diskCacheHits = 9;

    Pong back;
    std::string error;
    ASSERT_TRUE(parsePong(mustParse(pongToJson(pong)), back, error))
        << error;
    EXPECT_EQ(back.id, pong.id);
    EXPECT_EQ(back.version, pong.version);
    EXPECT_EQ(back.uptimeMs, pong.uptimeMs);
    EXPECT_EQ(back.inFlight, pong.inFlight);
    EXPECT_EQ(back.pendingPoints, pong.pendingPoints);
    EXPECT_EQ(back.pointsSimulated, pong.pointsSimulated);
    EXPECT_EQ(back.pointsDeduped, pong.pointsDeduped);
    EXPECT_EQ(back.memCacheHits, pong.memCacheHits);
    EXPECT_EQ(back.diskCacheHits, pong.diskCacheHits);
}

TEST(FabricProtocol, ShardRunRoundTrips)
{
    ShardRun run;
    run.id = "d0-1";
    run.sweepJson = "{\"schemaVersion\":1,\"bench\":\"fig6\"}";
    run.points = { "paper/mmx/t1/perfect/rr", "paper/mmx/t2/perfect/rr" };

    ShardRun back;
    std::string error;
    ASSERT_TRUE(
        parseShardRun(mustParse(shardRunToJson(run)), back, error))
        << error;
    EXPECT_EQ(back.id, run.id);
    // The embedded sweep must come back byte-exact: it re-parses as a
    // SimRequest on the worker, where a mangled escape would change
    // cache keys.
    EXPECT_EQ(back.sweepJson, run.sweepJson);
    EXPECT_EQ(back.points, run.points);
}

TEST(FabricProtocol, RowAndShardDoneRoundTrip)
{
    RowMsg msg;
    msg.id = "d1-0";
    msg.point = "paper/mmx/t1/perfect/rr";
    msg.key = "k|1|2";
    msg.rowLine = "{\"schema\":4,\"id\":\"x\",\"ipc\":0.5}";
    RowMsg rowBack;
    std::string error;
    ASSERT_TRUE(parseRow(mustParse(rowToJson(msg)), rowBack, error))
        << error;
    EXPECT_EQ(rowBack.point, msg.point);
    EXPECT_EQ(rowBack.key, msg.key);
    EXPECT_EQ(rowBack.rowLine, msg.rowLine);

    ShardDone ok;
    ok.id = "d1-0";
    ok.ok = true;
    ok.points = 7;
    ok.cached = 2;
    ok.simulated = 5;
    ShardDone okBack;
    ASSERT_TRUE(
        parseShardDone(mustParse(shardDoneToJson(ok)), okBack, error))
        << error;
    EXPECT_TRUE(okBack.ok);
    EXPECT_EQ(okBack.points, 7u);
    EXPECT_EQ(okBack.cached, 2u);
    EXPECT_EQ(okBack.simulated, 5u);

    ShardDone bad;
    bad.id = "d1-1";
    bad.ok = false;
    bad.errorCode = "bad_sweep";
    bad.errorMessage = "no such bench";
    ShardDone badBack;
    ASSERT_TRUE(
        parseShardDone(mustParse(shardDoneToJson(bad)), badBack, error))
        << error;
    EXPECT_FALSE(badBack.ok);
    EXPECT_EQ(badBack.errorCode, "bad_sweep");
    EXPECT_EQ(badBack.errorMessage, "no such bench");
}

TEST(FabricProtocol, RejectsVersionSkewAndUnknownFields)
{
    std::string error;
    Pong pong;
    EXPECT_FALSE(parsePong(
        mustParse("{\"kind\":\"pong\",\"fabricVersion\":99,"
                  "\"version\":\"x\",\"uptimeMs\":0,\"inFlight\":0,"
                  "\"pendingPoints\":0}"),
        pong, error));
    EXPECT_NE(error.find("fabricVersion"), std::string::npos) << error;

    ShardRun run;
    error.clear();
    EXPECT_FALSE(parseShardRun(
        mustParse(strfmt("{\"kind\":\"shard_run\",\"fabricVersion\":%d,"
                         "\"id\":\"d\",\"sweep\":\"{}\","
                         "\"points\":[\"p\"],\"surprise\":1}",
                         kFabricSchemaVersion)),
        run, error));
    EXPECT_NE(error.find("surprise"), std::string::npos) << error;

    // An empty deal is meaningless and must reject, not no-op.
    error.clear();
    EXPECT_FALSE(parseShardRun(
        mustParse(strfmt("{\"kind\":\"shard_run\",\"fabricVersion\":%d,"
                         "\"id\":\"d\",\"sweep\":\"{}\",\"points\":[]}",
                         kFabricSchemaVersion)),
        run, error));
}

TEST(FabricProtocol, KindOfSeparatesTheTwoProtocols)
{
    EXPECT_EQ(kindOf(mustParse(pingToJson(""))), "ping");
    // A plain SimRequest line carries no "kind": the dual-protocol
    // dispatch depends on that staying true.
    svc::SimRequest req;
    req.id = "r1";
    req.bench = "fig6";
    EXPECT_EQ(kindOf(mustParse(req.toJson())), "");
}

// ---------------------------------------------------------------------
// Dealer
// ---------------------------------------------------------------------

std::vector<DealPoint>
makePoints(int n)
{
    std::vector<DealPoint> points;
    for (int i = 0; i < n; ++i) {
        DealPoint p;
        p.id = strfmt("p%d", i);
        p.key = strfmt("k%d", i);
        p.cost = 1.0 + i;
        points.push_back(std::move(p));
    }
    return points;
}

TEST(Dealer, InitialDealPartitionsAllPoints)
{
    Dealer dealer(makePoints(7), 2);
    const std::vector<DealPoint> a = dealer.claim(0);
    const std::vector<DealPoint> b = dealer.claim(1);
    std::set<std::string> seen;
    for (const DealPoint &p : a)
        EXPECT_TRUE(seen.insert(p.id).second) << p.id;
    for (const DealPoint &p : b)
        EXPECT_TRUE(seen.insert(p.id).second) << p.id;
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_FALSE(a.empty());
    EXPECT_FALSE(b.empty());
    // The deal is the same LPT assignment the shard planner computes.
    std::vector<double> costs;
    for (int i = 0; i < 7; ++i)
        costs.push_back(1.0 + i);
    const std::vector<int> bins = driver::dealByCost(costs, 2);
    for (const DealPoint &p : a)
        EXPECT_EQ(bins[std::stoi(p.id.substr(1))], 0) << p.id;
    for (const DealPoint &p : b)
        EXPECT_EQ(bins[std::stoi(p.id.substr(1))], 1) << p.id;
}

TEST(Dealer, WorkerDeathRedealsUnfinishedPoints)
{
    Dealer dealer(makePoints(6), 2);
    const std::vector<DealPoint> mine = dealer.claim(1);
    for (const DealPoint &p : mine)
        EXPECT_TRUE(dealer.complete(p.id));

    // Worker 0 claimed its deal, finished one point, then died.
    const std::vector<DealPoint> theirs = dealer.claim(0);
    ASSERT_GE(theirs.size(), 2u);
    EXPECT_TRUE(dealer.complete(theirs[0].id));
    const size_t redealt = dealer.fail(0);
    EXPECT_EQ(redealt, theirs.size() - 1);
    EXPECT_EQ(dealer.redealCount(), redealt);
    EXPECT_EQ(dealer.liveWorkers(), 1);

    // The survivor picks up exactly the dead worker's unfinished load.
    const std::vector<DealPoint> rescued = dealer.claim(1);
    EXPECT_EQ(rescued.size(), redealt);
    for (const DealPoint &p : rescued)
        EXPECT_TRUE(dealer.complete(p.id));
    EXPECT_TRUE(dealer.done());
    EXPECT_FALSE(dealer.failed());
    // Everything finished: the next claim returns empty immediately.
    EXPECT_TRUE(dealer.claim(1).empty());
}

TEST(Dealer, DuplicateCompletionIsIdempotent)
{
    Dealer dealer(makePoints(2), 1);
    const std::vector<DealPoint> mine = dealer.claim(0);
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_TRUE(dealer.complete("p0"));
    EXPECT_FALSE(dealer.complete("p0"));    // the late duplicate row
    EXPECT_EQ(dealer.remaining(), 1u);
    EXPECT_TRUE(dealer.complete("p1"));
    EXPECT_TRUE(dealer.done());
}

TEST(Dealer, PointCompletedWhileQueuedIsNeverClaimed)
{
    Dealer dealer(makePoints(3), 1);
    // A duplicate completion can land before the point is ever dealt
    // (a presumed-dead worker's rows arriving after a re-deal): the
    // claimer must skip it.
    EXPECT_TRUE(dealer.complete("p1"));
    const std::vector<DealPoint> mine = dealer.claim(0);
    ASSERT_EQ(mine.size(), 2u);
    for (const DealPoint &p : mine)
        EXPECT_NE(p.id, "p1");
}

TEST(Dealer, AllWorkersDeadReportsFailure)
{
    Dealer dealer(makePoints(4), 2);
    EXPECT_GT(dealer.fail(0), 0u);
    EXPECT_EQ(dealer.fail(0), 0u);  // idempotent
    EXPECT_GT(dealer.fail(1), 0u);
    EXPECT_TRUE(dealer.failed());
    EXPECT_FALSE(dealer.done());
    EXPECT_EQ(dealer.liveWorkers(), 0);
    // claim() must unblock with nothing rather than hang the fleet.
    EXPECT_TRUE(dealer.claim(0).empty());
    EXPECT_TRUE(dealer.claim(1).empty());
}

TEST(Dealer, BlockedClaimWakesWhenAnotherWorkerDies)
{
    // One point, two workers: one initial queue is empty, so that
    // worker's claim blocks until the owner dies and the point
    // re-deals.
    Dealer dealer(makePoints(1), 2);
    const bool zeroOwns = !dealer.claim(0).empty();
    const int idleWorker = zeroOwns ? 1 : 0;
    const int busyWorker = zeroOwns ? 0 : 1;
    if (!zeroOwns)
        ASSERT_FALSE(dealer.claim(1).empty());

    std::vector<DealPoint> rescued;
    std::thread claimer([&] { rescued = dealer.claim(idleWorker); });
    dealer.fail(busyWorker);
    claimer.join();
    ASSERT_EQ(rescued.size(), 1u);
    EXPECT_TRUE(dealer.complete(rescued[0].id));
    EXPECT_TRUE(dealer.done());
}

// ---------------------------------------------------------------------
// WorkerHandler against a real SimService
// ---------------------------------------------------------------------

/** The quickest real sweep: one point, tiny scale, capped cycles. */
svc::SimRequest
tinyRequest()
{
    svc::SimRequest req;
    req.id = "sweep";
    req.isas = { "mmx" };
    req.memModels = { "perfect" };
    req.quick = true;
    req.maxCycles = 50000;
    return req;
}

/** The canonical point ids of tinyRequest(), straight from the same
 *  grid expansion the service performs. */
std::vector<std::string>
tinyPointIds()
{
    driver::SweepGrid grid;
    grid.isas({ isa::SimdIsa::Mmx });
    grid.memModels({ mem::MemModel::Perfect });
    driver::applyRunSelection(grid, {}, 50000);
    std::vector<std::string> ids;
    for (const driver::ExperimentSpec &spec : grid.expand(0))
        ids.push_back(spec.canonicalId());
    return ids;
}

TEST(WorkerHandler, PingAnswersPongWithVersionAndGauges)
{
    svc::SimService service;
    WorkerHandler handler(service);
    std::vector<std::string> chunks;
    std::string finalLine;
    ASSERT_TRUE(handler.handle(
        pingToJson("hi"),
        [&](std::string line) { chunks.push_back(std::move(line)); },
        finalLine));
    EXPECT_TRUE(chunks.empty());
    Pong pong;
    std::string error;
    ASSERT_TRUE(parsePong(mustParse(finalLine), pong, error)) << error;
    EXPECT_EQ(pong.id, "hi");
    EXPECT_EQ(pong.version, fabricVersionString());
    EXPECT_EQ(pong.inFlight, 0);
    EXPECT_EQ(pong.pendingPoints, 0);
    // A fresh service has touched no points yet: all gauges zero.
    EXPECT_EQ(pong.pointsSimulated, 0u);
    EXPECT_EQ(pong.pointsDeduped, 0u);
    EXPECT_EQ(pong.memCacheHits, 0u);
    EXPECT_EQ(pong.diskCacheHits, 0u);
}

TEST(WorkerHandler, ShardRunStreamsRowsThenReportsDone)
{
    svc::SimService service;
    WorkerHandler handler(service);
    const std::vector<std::string> ids = tinyPointIds();
    ASSERT_EQ(ids.size(), 1u);

    ShardRun deal;
    deal.id = "d0-0";
    deal.sweepJson = tinyRequest().toJson();
    deal.points = ids;

    std::vector<std::string> chunks;
    std::string finalLine;
    ASSERT_TRUE(handler.handle(
        shardRunToJson(deal),
        [&](std::string line) { chunks.push_back(std::move(line)); },
        finalLine));

    ASSERT_EQ(chunks.size(), 1u);
    RowMsg msg;
    std::string error;
    ASSERT_TRUE(parseRow(mustParse(chunks[0]), msg, error)) << error;
    EXPECT_EQ(msg.id, deal.id);
    EXPECT_EQ(msg.point, ids[0]);
    EXPECT_FALSE(msg.key.empty());
    driver::ResultRow row;
    ASSERT_TRUE(driver::parseResultRow(msg.rowLine, row));
    EXPECT_EQ(row.id + "", msg.point);

    ShardDone done;
    ASSERT_TRUE(parseShardDone(mustParse(finalLine), done, error))
        << error;
    EXPECT_TRUE(done.ok);
    EXPECT_EQ(done.id, deal.id);
    EXPECT_EQ(done.points, 1u);
    EXPECT_EQ(done.simulated, 1u);
    EXPECT_EQ(done.cached, 0u);
    EXPECT_EQ(handler.pendingPoints(), 0);
}

TEST(WorkerHandler, UnknownPointFailsTheDeal)
{
    svc::SimService service;
    WorkerHandler handler(service);
    ShardRun deal;
    deal.id = "d0-0";
    deal.sweepJson = tinyRequest().toJson();
    deal.points = { "not/a/real/point" };

    std::vector<std::string> chunks;
    std::string finalLine;
    ASSERT_TRUE(handler.handle(
        shardRunToJson(deal),
        [&](std::string line) { chunks.push_back(std::move(line)); },
        finalLine));
    EXPECT_TRUE(chunks.empty());
    ShardDone done;
    std::string error;
    ASSERT_TRUE(parseShardDone(mustParse(finalLine), done, error))
        << error;
    EXPECT_FALSE(done.ok);
    EXPECT_EQ(done.errorCode, svc::errc::kBadRequest);
    // No dealt point may leak into the pending gauge after a failure.
    EXPECT_EQ(handler.pendingPoints(), 0);
}

TEST(WorkerHandler, NonFabricLinesFallThrough)
{
    svc::SimService service;
    WorkerHandler handler(service);
    std::string finalLine;
    auto chunk = [](std::string) {};
    // A plain SimRequest and plain garbage both belong to the strict
    // SimRequest path, not the fabric.
    EXPECT_FALSE(handler.handle(tinyRequest().toJson(), chunk,
                                finalLine));
    EXPECT_FALSE(handler.handle("not json at all", chunk, finalLine));
    // An unknown kind IS a fabric message — answered with an error
    // line instead of falling through.
    ASSERT_TRUE(handler.handle("{\"kind\":\"frobnicate\"}", chunk,
                               finalLine));
    EXPECT_EQ(kindOf(mustParse(finalLine)), "error");
}

// ---------------------------------------------------------------------
// Sequencer chunk streaming
// ---------------------------------------------------------------------

TEST(SequencerChunks, ChunksPrecedeTheirFinalAndNeverReorderOthers)
{
    std::vector<std::string> out;
    std::mutex outMutex;
    svc::ResponseSequencer::Config cfg;
    cfg.parallel = 4;
    cfg.submit = [](const svc::SimRequest &req) {
        return svc::SimResponse::failure(req.id, svc::errc::kBadRequest,
                                         "plain");
    };
    cfg.rawSubmit = [](const std::string &line,
                       const std::function<void(std::string)> &chunk,
                       std::string &finalLine) {
        if (line.rfind("chunky:", 0) != 0)
            return false;
        for (int i = 0; i < 3; ++i)
            chunk(strfmt("%s.c%d", line.c_str(), i));
        finalLine = line + ".done";
        return true;
    };
    cfg.emit = [&](const std::string &line) {
        std::lock_guard<std::mutex> lock(outMutex);
        out.push_back(line);
        return true;
    };
    {
        svc::ResponseSequencer seq(cfg);
        seq.push("chunky:a");
        seq.push("{\"schemaVersion\":1,\"id\":\"r1\",\"bench\":\"x\"}");
        seq.push("chunky:b");
        seq.finish();
    }
    ASSERT_EQ(out.size(), 9u);
    // Slot order is strict: all of a's chunks, a's final, the plain
    // response, then b's chunks and final.
    EXPECT_EQ(out[0], "chunky:a.c0");
    EXPECT_EQ(out[1], "chunky:a.c1");
    EXPECT_EQ(out[2], "chunky:a.c2");
    EXPECT_EQ(out[3], "chunky:a.done");
    EXPECT_NE(out[4].find("\"r1\""), std::string::npos) << out[4];
    EXPECT_EQ(out[5], "chunky:b.c0");
    EXPECT_EQ(out[8], "chunky:b.done");
}

} // namespace
} // namespace momsim::fabric
