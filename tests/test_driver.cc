/**
 * @file
 * Tests for the experiment-runner subsystem: thread-pool coverage and
 * determinism, sweep-grid cartesian expansion, seed stability, and the
 * CSV/JSON serializations of the result sink.
 *
 * The load-bearing property is the determinism contract: the same sweep
 * must produce byte-identical aggregated output whether it runs on one
 * worker or many.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "driver/experiment.hh"
#include "driver/result_sink.hh"
#include "driver/thread_pool.hh"
#include "tests/csv_test_util.hh"
#include "workloads/workload_repo.hh"

namespace momsim::driver
{
namespace
{

using isa::SimdIsa;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    constexpr size_t kTasks = 1000;
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(kTasks);
    pool.parallelFor(kTasks, [&](size_t i) { hits[i] += 1; });
    for (size_t i = 0; i < kTasks; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleWorkerRunsInlineInOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    std::vector<size_t> order;
    std::thread::id caller = std::this_thread::get_id();
    pool.parallelFor(16, [&](size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, ZeroTasksIsANoOp)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<size_t> sum { 0 };
        pool.parallelFor(100, [&](size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [](size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // Pool must stay usable after a failed batch.
    std::atomic<int> ran { 0 };
    pool.parallelFor(8, [&](size_t) { ran += 1; });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, UnbalancedTasksAllComplete)
{
    // Front-loaded costs force the tail workers to steal.
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    pool.parallelFor(64, [&](size_t i) {
        if (i < 4)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        hits[i] += 1;
    });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, CostedDealRunsEveryIndexExactlyOnce)
{
    constexpr size_t kTasks = 500;
    ThreadPool pool(4);
    std::vector<double> costs(kTasks);
    for (size_t i = 0; i < kTasks; ++i)
        costs[i] = static_cast<double>((i * 7919) % 97) + 1.0;
    std::vector<std::atomic<int>> hits(kTasks);
    pool.parallelFor(kTasks, costs, [&](size_t i) { hits[i] += 1; });
    for (size_t i = 0; i < kTasks; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, CostedDealOnOneWorkerIsAPlainLoop)
{
    ThreadPool pool(1);
    std::vector<size_t> order;
    pool.parallelFor(8, { 1, 9, 2, 8, 3, 7, 4, 6 },
                     [&](size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 8u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

// The acceptance-criterion speedup check. Registered as its own serial
// CTest (driver_speedup) and filtered out of the main suite, because a
// loaded machine would make any timing assertion flaky.
TEST(ThreadPoolSpeedup, ParallelForBeatsSerialOnMulticore)
{
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < 4)
        GTEST_SKIP() << "needs >= 4 hardware threads, have " << hw;

    constexpr size_t kTasks = 32;
    auto spin = [](size_t) {
        volatile uint64_t acc = 0;
        for (uint64_t i = 0; i < 30'000'000ull; ++i)
            acc += i;
    };
    auto timed = [&](ThreadPool &pool) {
        auto t0 = std::chrono::steady_clock::now();
        pool.parallelFor(kTasks, spin);
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    ThreadPool serial(1), parallel(4);
    timed(parallel);    // warm the workers before measuring
    double t1 = timed(serial);
    double t4 = timed(parallel);
    EXPECT_GT(t1 / t4, 2.0)
        << "serial " << t1 << "s vs 4 workers " << t4 << "s";
}

// ---------------------------------------------------------------------------
// SweepGrid
// ---------------------------------------------------------------------------

TEST(SweepGrid, DefaultsToOnePoint)
{
    SweepGrid grid;
    auto specs = grid.expand();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].id, "paper/MMX/1thr/conventional/RR");
    EXPECT_EQ(specs[0].simd, SimdIsa::Mmx);
    EXPECT_EQ(specs[0].threads, 1);
}

TEST(SweepGrid, WorkloadAxisSweepsOutermost)
{
    SweepGrid grid;
    EXPECT_FALSE(grid.hasExplicitWorkloads());
    grid.workloadSpecs({ "paper", "mpeg2x8" })
        .isas({ SimdIsa::Mmx, SimdIsa::Mom });
    EXPECT_TRUE(grid.hasExplicitWorkloads());
    EXPECT_EQ(grid.size(), 4u);
    auto specs = grid.expand(3);
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].id, "paper/MMX/1thr/conventional/RR");
    EXPECT_EQ(specs[1].id, "paper/MOM/1thr/conventional/RR");
    EXPECT_EQ(specs[2].id, "mpeg2x8/MMX/1thr/conventional/RR");
    EXPECT_EQ(specs[3].id, "mpeg2x8/MOM/1thr/conventional/RR");
    EXPECT_EQ(specs[2].workload, "mpeg2x8");
    // Seeds derive from the workload-qualified identity.
    EXPECT_NE(specs[0].seed, specs[2].seed);
}

TEST(SweepGrid, CartesianExpansionNestsAxes)
{
    SweepGrid grid;
    grid.isas({ SimdIsa::Mmx, SimdIsa::Mom })
        .threadCounts({ 1, 2, 4 })
        .memModels({ mem::MemModel::Perfect, mem::MemModel::Conventional })
        .policies({ cpu::FetchPolicy::RoundRobin,
                    cpu::FetchPolicy::ICount });
    EXPECT_EQ(grid.size(), 24u);
    auto specs = grid.expand();
    ASSERT_EQ(specs.size(), 24u);
    // isa outermost: first half MMX, second half MOM.
    EXPECT_EQ(specs[0].simd, SimdIsa::Mmx);
    EXPECT_EQ(specs[12].simd, SimdIsa::Mom);
    // policy innermost: alternates fastest.
    EXPECT_EQ(specs[0].policy, cpu::FetchPolicy::RoundRobin);
    EXPECT_EQ(specs[1].policy, cpu::FetchPolicy::ICount);
    EXPECT_EQ(specs[0].id, "paper/MMX/1thr/perfect/RR");
    EXPECT_EQ(specs[23].id, "paper/MOM/4thr/conventional/IC");
    // Every id unique.
    for (size_t i = 0; i < specs.size(); ++i)
        for (size_t j = i + 1; j < specs.size(); ++j)
            ASSERT_NE(specs[i].id, specs[j].id);
}

TEST(SweepGrid, SkipDropsPointsWithoutShiftingSeeds)
{
    SweepGrid grid;
    grid.isas({ SimdIsa::Mmx, SimdIsa::Mom })
        .policies({ cpu::FetchPolicy::RoundRobin,
                    cpu::FetchPolicy::OCount });
    auto full = grid.expand(42);

    grid.skip([](const ExperimentSpec &s) {
        return s.simd == SimdIsa::Mmx &&
               s.policy == cpu::FetchPolicy::OCount;
    });
    auto filtered = grid.expand(42);
    ASSERT_EQ(full.size(), 4u);
    ASSERT_EQ(filtered.size(), 3u);
    // Surviving specs keep the identical identity-derived seeds.
    for (const auto &spec : filtered) {
        bool found = false;
        for (const auto &ref : full) {
            if (ref.id == spec.id) {
                EXPECT_EQ(ref.seed, spec.seed);
                found = true;
            }
        }
        EXPECT_TRUE(found) << spec.id;
    }
}

TEST(SweepGrid, VariantsCrossIntoTheProduct)
{
    SweepGrid grid;
    grid.threadCounts({ 1, 2 })
        .variants({
            { "win16",
              [](ExperimentSpec &s) {
                  s.tweakCore = [](cpu::CoreConfig &c) {
                      c.windowPerThread = 16;
                  };
              } },
            { "win64",
              [](ExperimentSpec &s) {
                  s.tweakCore = [](cpu::CoreConfig &c) {
                      c.windowPerThread = 64;
                  };
              } },
        });
    auto specs = grid.expand();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].id, "paper/MMX/1thr/conventional/RR/win16");
    EXPECT_EQ(specs[1].id, "paper/MMX/1thr/conventional/RR/win64");
    EXPECT_EQ(specs[2].id, "paper/MMX/2thr/conventional/RR/win16");
    ASSERT_TRUE(specs[0].tweakCore);
    cpu::CoreConfig cfg;
    specs[0].tweakCore(cfg);
    EXPECT_EQ(cfg.windowPerThread, 16);
}

TEST(SweepGrid, SeedsAreStableAndPerTaskDistinct)
{
    SweepGrid grid;
    grid.threadCounts({ 1, 2, 4, 8 });
    auto a = grid.expand(7);
    auto b = grid.expand(7);
    auto c = grid.expand(8);
    ASSERT_EQ(a.size(), 4u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_NE(a[i].seed, c[i].seed);    // base seed participates
        for (size_t j = i + 1; j < a.size(); ++j)
            EXPECT_NE(a[i].seed, a[j].seed);
    }
}

TEST(SweepGrid, LimitsPropagate)
{
    SweepGrid grid;
    grid.limits(3, 1000);
    auto specs = grid.expand();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].targetCompletions, 3);
    EXPECT_EQ(specs[0].maxCycles, 1000u);
}

// ---------------------------------------------------------------------------
// ResultSink serialization goldens
// ---------------------------------------------------------------------------

ResultRow
makeRow(const std::string &id, SimdIsa simd, int threads,
        cpu::FetchPolicy policy)
{
    ResultRow row;
    row.id = id;
    row.simd = simd;
    row.threads = threads;
    row.memModel = mem::MemModel::Conventional;
    row.policy = policy;
    row.seed = 99;
    row.run.cycles = 1000;
    row.run.committedEq = 2500;
    row.run.ipc = 2.5;
    row.run.eipc = 3.125;
    row.run.l1HitRate = 0.984;
    row.run.icacheHitRate = 0.999;
    row.run.l1AvgLatency = 1.39;
    row.run.mispredicts = 42;
    row.run.condBranches = 420;
    row.run.completions = 8;
    row.headline = ResultSink::headlineOf(row.run, simd);
    row.workload = "paper";
    row.run.simKcps = 881.3;    // schema v4: serialized as tail columns
    row.run.wallMs = 2.27;
    row.wallMs = 123.0;     // must never appear in serializations
    return row;
}

TEST(ResultSink, CsvGolden)
{
    ResultSink sink;
    sink.append(makeRow("MMX/1thr/conventional/RR", SimdIsa::Mmx, 1,
                        cpu::FetchPolicy::RoundRobin));
    sink.append(makeRow("MOM/8thr/conventional/IC", SimdIsa::Mom, 8,
                        cpu::FetchPolicy::ICount));
    EXPECT_EQ(
        sink.toCsv(),
        "id,workload,isa,threads,mem,policy,variant,seed,cycles,"
        "committed_eq,ipc,eipc,headline,l1_hit_rate,icache_hit_rate,"
        "l1_avg_latency,mispredicts,cond_branches,completions,"
        "hit_cycle_limit,sim_kcps,wall_ms\n"
        "MMX/1thr/conventional/RR,paper,MMX,1,conventional,RR,,99,1000,"
        "2500,2.5,3.125,2.5,0.984,0.999,1.39,42,420,8,0,881.3,2.27\n"
        "MOM/8thr/conventional/IC,paper,MOM,8,conventional,IC,,99,1000,"
        "2500,2.5,3.125,3.125,0.984,0.999,1.39,42,420,8,0,881.3,2.27\n");
}

TEST(ResultSink, JsonGolden)
{
    ResultSink sink;
    sink.append(makeRow("MMX/1thr/conventional/RR", SimdIsa::Mmx, 1,
                        cpu::FetchPolicy::RoundRobin));
    EXPECT_EQ(
        sink.toJson(),
        "[\n"
        "  {\"id\":\"MMX/1thr/conventional/RR\",\"workload\":\"paper\","
        "\"isa\":\"MMX\","
        "\"threads\":1,\"mem\":\"conventional\",\"policy\":\"RR\","
        "\"variant\":\"\",\"seed\":99,\"cycles\":1000,"
        "\"committed_eq\":2500,\"ipc\":2.5,\"eipc\":3.125,"
        "\"headline\":2.5,\"l1_hit_rate\":0.984,"
        "\"icache_hit_rate\":0.999,\"l1_avg_latency\":1.39,"
        "\"mispredicts\":42,\"cond_branches\":420,\"completions\":8,"
        "\"hit_cycle_limit\":false,\"sim_kcps\":881.3,"
        "\"wall_ms\":2.27}\n"
        "]\n");
}

TEST(ResultSink, CsvQuotesFieldsThatNeedIt)
{
    ResultRow row = makeRow("a,b", SimdIsa::Mmx, 1,
                            cpu::FetchPolicy::RoundRobin);
    row.variant = "quote\"y";
    ResultSink sink;
    sink.append(row);
    std::string csv = sink.toCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"y\""), std::string::npos);
}

TEST(ResultSink, FindAndHeadlineAt)
{
    ResultSink sink;
    sink.append(makeRow("MMX/1thr/conventional/RR", SimdIsa::Mmx, 1,
                        cpu::FetchPolicy::RoundRobin));
    EXPECT_NE(sink.find(SimdIsa::Mmx, 1, mem::MemModel::Conventional,
                        cpu::FetchPolicy::RoundRobin),
              nullptr);
    EXPECT_EQ(sink.find(SimdIsa::Mom, 1, mem::MemModel::Conventional,
                        cpu::FetchPolicy::RoundRobin),
              nullptr);
    EXPECT_DOUBLE_EQ(
        sink.headlineAt(SimdIsa::Mmx, 1, mem::MemModel::Conventional,
                        cpu::FetchPolicy::RoundRobin),
        2.5);
    // Skipped points read back as 0.0 — what the benches print.
    EXPECT_DOUBLE_EQ(
        sink.headlineAt(SimdIsa::Mmx, 8, mem::MemModel::Conventional,
                        cpu::FetchPolicy::OCount),
        0.0);
}

TEST(ResultSink, GeomeanAndRule)
{
    EXPECT_DOUBLE_EQ(ResultSink::geomean({ 2.0, 8.0 }), 4.0);
    EXPECT_DOUBLE_EQ(ResultSink::geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(ResultSink::geomean({ 1.0, 0.0 }), 0.0);
    EXPECT_EQ(ResultSink::rule(4), "----");
    EXPECT_EQ(ResultSink::rule(3, '='), "===");
}

// ---------------------------------------------------------------------------
// End-to-end determinism: jobs=1 vs jobs=N byte-identical aggregates
// ---------------------------------------------------------------------------

workloads::WorkloadRepo &
tinyRepo()
{
    static workloads::WorkloadRepo repo(workloads::WorkloadScale::Tiny);
    return repo;
}

SweepGrid
integrationGrid()
{
    SweepGrid grid;
    grid.isas({ SimdIsa::Mmx, SimdIsa::Mom })
        .threadCounts({ 1, 2 })
        .memModels({ mem::MemModel::Perfect,
                     mem::MemModel::Conventional })
        .policies({ cpu::FetchPolicy::RoundRobin,
                    cpu::FetchPolicy::ICount });
    return grid;
}

using testutil::stripSelfMeasurement;

TEST(ExperimentRunner, SameSeedsSameStatsRegardlessOfThreadCount)
{
    SweepGrid grid = integrationGrid();

    ThreadPool pool1(1);
    ExperimentRunner serial(tinyRepo(), pool1);
    ResultSink a = serial.run(grid, 1234);

    ThreadPool pool4(4);
    ExperimentRunner threaded(tinyRepo(), pool4);
    ResultSink b = threaded.run(grid, 1234);

    ASSERT_EQ(a.size(), 16u);
    ASSERT_EQ(a.size(), b.size());
    // Every simulation-result column must match byte for byte; only
    // the two self-measurement tail columns may differ between runs.
    EXPECT_EQ(stripSelfMeasurement(a.toCsv()),
              stripSelfMeasurement(b.toCsv()));
    // And the structured results too, field by field.
    for (size_t i = 0; i < a.size(); ++i) {
        const ResultRow &ra = a.rows()[i], &rb = b.rows()[i];
        EXPECT_EQ(ra.id, rb.id);
        EXPECT_EQ(ra.seed, rb.seed);
        EXPECT_EQ(ra.run.cycles, rb.run.cycles);
        EXPECT_EQ(ra.run.committedEq, rb.run.committedEq);
        EXPECT_DOUBLE_EQ(ra.run.ipc, rb.run.ipc);
        EXPECT_DOUBLE_EQ(ra.run.eipc, rb.run.eipc);
        EXPECT_EQ(ra.run.mispredicts, rb.run.mispredicts);
    }
    // Sanity: the simulations actually ran.
    for (const ResultRow &row : a.rows()) {
        EXPECT_GT(row.run.cycles, 0u) << row.id;
        EXPECT_GT(row.headline, 0.0) << row.id;
    }
}

TEST(ExperimentRunner, CycleLimitSurfacesAsRowDataNotStderr)
{
    SweepGrid grid;
    grid.limits(-1, 50);    // far too few cycles to finish the rotation
    auto specs = grid.expand();
    ASSERT_EQ(specs.size(), 1u);

    ThreadPool pool(1);
    ExperimentRunner runner(tinyRepo(), pool);
    ResultRow row = runner.runOne(specs[0]);
    EXPECT_TRUE(row.run.hitCycleLimit);
    EXPECT_LT(row.run.completions, 8);

    ResultSink sink;
    sink.append(row);
    // hit_cycle_limit=1 sits right after the completions column (the
    // schema-v4 self-measurement columns follow it).
    EXPECT_NE(sink.toCsv().find(strfmt(",%d,1,", row.run.completions)),
              std::string::npos);
    EXPECT_NE(sink.toJson().find("\"hit_cycle_limit\":true"),
              std::string::npos);
}

TEST(ExperimentRunner, RunOneMatchesPooledRun)
{
    SweepGrid grid;
    grid.threadCounts({ 2 });
    auto specs = grid.expand(5);
    ASSERT_EQ(specs.size(), 1u);

    ThreadPool pool(2);
    ExperimentRunner runner(tinyRepo(), pool);
    ResultRow direct = runner.runOne(specs[0]);
    ResultSink pooled = runner.run(specs);
    ASSERT_EQ(pooled.size(), 1u);
    EXPECT_EQ(direct.run.cycles, pooled.rows()[0].run.cycles);
    EXPECT_DOUBLE_EQ(direct.run.ipc, pooled.rows()[0].run.ipc);
}

TEST(ExperimentRunner, BatchedExecutionIsByteIdenticalToUnbatched)
{
    // Interleaving K consecutive sweep points per worker task is a
    // pure execution optimization: for every batch size — aligned,
    // ragged tail, larger than the whole sweep — the rows must match
    // the classic one-task-per-point run byte for byte.
    SweepGrid grid = integrationGrid();

    ThreadPool pool(2);
    ExperimentRunner runner(tinyRepo(), pool);
    ASSERT_EQ(runner.batchSize(), 1);
    ResultSink ref = runner.run(grid, 1234);
    ASSERT_EQ(ref.size(), 16u);

    for (int batch : { 2, 3, 16, 99 }) {
        SCOPED_TRACE(testing::Message() << "batch=" << batch);
        runner.setBatchSize(batch);
        EXPECT_EQ(runner.batchSize(), batch);
        ResultSink out = runner.run(grid, 1234);
        ASSERT_EQ(out.size(), ref.size());
        EXPECT_EQ(stripSelfMeasurement(out.toCsv()),
                  stripSelfMeasurement(ref.toCsv()));
    }
    // Values below 1 clamp instead of dividing by zero.
    runner.setBatchSize(0);
    EXPECT_EQ(runner.batchSize(), 1);

    // runBatch itself, driven directly on the calling thread.
    auto specs = grid.expand(1234);
    std::vector<const ExperimentSpec *> firstThree {
        &specs[0], &specs[1], &specs[2]
    };
    std::vector<ResultRow> rows = runner.runBatch(firstThree);
    ASSERT_EQ(rows.size(), 3u);
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].id, ref.rows()[i].id);
        EXPECT_EQ(rows[i].run.cycles, ref.rows()[i].run.cycles);
        EXPECT_DOUBLE_EQ(rows[i].run.ipc, ref.rows()[i].run.ipc);
        EXPECT_DOUBLE_EQ(rows[i].run.eipc, ref.rows()[i].run.eipc);
    }
}

} // namespace
} // namespace momsim::driver
