/**
 * @file
 * Tests for the service API boundary (src/svc/): the SimRequest wire
 * format round-trips and rejects unknown fields / foreign versions,
 * the bench registry is consistent, SimService::submit returns
 * structured errors on every path that used to exit(), and concurrent
 * submissions from N client threads are byte-identical to a serial
 * replay.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "svc/axis_parse.hh"
#include "svc/bench_registry.hh"
#include "svc/json.hh"
#include "svc/sim_request.hh"
#include "svc/sim_response.hh"
#include "svc/sim_service.hh"

namespace momsim::svc
{
namespace
{

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

TEST(Json, ParsesNestedDocuments)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson("{\"a\":[1,2,3],\"b\":{\"c\":\"x\"},"
                          "\"d\":true,\"e\":null,\"f\":-2.5}",
                          v, error))
        << error;
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.field("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items.size(), 3u);
    int n = 0;
    EXPECT_TRUE(a->items[1].toInt(n));
    EXPECT_EQ(n, 2);
    const JsonValue *b = v.field("b");
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(b->isObject());
    EXPECT_EQ(b->field("c")->text, "x");
    EXPECT_TRUE(v.field("d")->boolean);
    EXPECT_TRUE(v.field("e")->isNull());
    double d = 0;
    EXPECT_TRUE(v.field("f")->toDouble(d));
    EXPECT_DOUBLE_EQ(d, -2.5);
}

TEST(Json, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    for (const char *bad :
         { "", "{", "[1,", "{\"a\":}", "{\"a\":1,}", "{\"a\":1}x",
           "{'a':1}", "{\"a\":1 \"b\":2}", "nope",
           "{\"a\":1,\"a\":2}", /* duplicate key */
           // Strict JSON number grammar: these parse under strtod but
           // are not JSON numbers.
           "{\"a\":+5}", "{\"a\":5.}", "{\"a\":.5}", "{\"a\":1e}",
           "{\"a\":01}", "{\"a\":-}" }) {
        error.clear();
        EXPECT_FALSE(parseJson(bad, v, error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(Json, NumbersKeepExact64BitValues)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson("{\"big\":18446744073709551615}", v, error));
    uint64_t u = 0;
    EXPECT_TRUE(v.field("big")->toU64(u));
    EXPECT_EQ(u, 18446744073709551615ull);

    // 2^64 is grammatically a number but out of uint64 range: toU64
    // must reject, not clamp (a clamped cycle cap would cache rows
    // under a limit the client never requested).
    ASSERT_TRUE(parseJson("{\"big\":18446744073709551616}", v, error));
    EXPECT_FALSE(v.field("big")->toU64(u));
    SimRequest req;
    EXPECT_FALSE(SimRequest::fromJson(
        "{\"schemaVersion\":1,\"maxCycles\":18446744073709551616}", req,
        error));
}

// ---------------------------------------------------------------------
// SimRequest wire format
// ---------------------------------------------------------------------

TEST(SimRequest, JsonRoundTrips)
{
    SimRequest req;
    req.id = "client-7";
    req.bench = "fig6";
    req.workloads = { "paper", "gsmx8" };
    req.quick = true;
    req.maxCycles = 123456789012345ull;
    req.seed = 42;
    req.shardIndex = 2;
    req.shardCount = 3;
    req.batch = 4;
    req.cacheDir = "/tmp/momsim \"cache\"";

    SimRequest back;
    std::string error;
    ASSERT_TRUE(SimRequest::fromJson(req.toJson(), back, error))
        << error;
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.bench, req.bench);
    EXPECT_EQ(back.workloads, req.workloads);
    EXPECT_EQ(back.quick, req.quick);
    EXPECT_EQ(back.maxCycles, req.maxCycles);
    EXPECT_EQ(back.seed, req.seed);
    EXPECT_EQ(back.shardIndex, req.shardIndex);
    EXPECT_EQ(back.shardCount, req.shardCount);
    EXPECT_EQ(back.batch, req.batch);
    EXPECT_EQ(back.cacheDir, req.cacheDir);
    // Re-serialization is stable (fixed field order).
    EXPECT_EQ(back.toJson(), req.toJson());

    // The axes variant round-trips too.
    SimRequest axes;
    axes.isas = { "mmx", "mom" };
    axes.threads = { 1, 4, 8 };
    axes.memModels = { "perfect", "decoupled" };
    axes.policies = { "rr", "icount" };
    ASSERT_TRUE(SimRequest::fromJson(axes.toJson(), back, error))
        << error;
    EXPECT_EQ(back.isas, axes.isas);
    EXPECT_EQ(back.threads, axes.threads);
    EXPECT_EQ(back.memModels, axes.memModels);
    EXPECT_EQ(back.policies, axes.policies);
}

TEST(SimRequest, RejectsUnknownFieldsAndForeignVersions)
{
    SimRequest out;
    std::string error;

    EXPECT_FALSE(SimRequest::fromJson(
        "{\"schemaVersion\":1,\"bogus\":3}", out, error));
    EXPECT_NE(error.find("bogus"), std::string::npos);

    EXPECT_FALSE(SimRequest::fromJson(
        "{\"schemaVersion\":99,\"bench\":\"fig6\"}", out, error));
    EXPECT_NE(error.find("schemaVersion 99"), std::string::npos);

    EXPECT_FALSE(
        SimRequest::fromJson("{\"bench\":\"fig6\"}", out, error));
    EXPECT_NE(error.find("schemaVersion"), std::string::npos);

    // Wrong types reject instead of coercing.
    EXPECT_FALSE(SimRequest::fromJson(
        "{\"schemaVersion\":1,\"quick\":\"yes\"}", out, error));
    EXPECT_FALSE(SimRequest::fromJson(
        "{\"schemaVersion\":1,\"threads\":[\"two\"]}", out, error));
    EXPECT_FALSE(SimRequest::fromJson(
        "{\"schemaVersion\":1,\"maxCycles\":-5}", out, error));
    EXPECT_FALSE(SimRequest::fromJson("[]", out, error));
    EXPECT_FALSE(SimRequest::fromJson("not json", out, error));
}

// ---------------------------------------------------------------------
// Bench registry
// ---------------------------------------------------------------------

TEST(BenchRegistry, EntriesAreWellFormed)
{
    const std::vector<BenchDef> &regs = benchRegistry();
    ASSERT_GE(regs.size(), 13u);    // 12 figures/tables + explorer
    for (const BenchDef &def : regs) {
        EXPECT_FALSE(def.name.empty());
        EXPECT_FALSE(def.oldBinary.empty()) << def.name;
        EXPECT_FALSE(def.summary.empty()) << def.name;
        // Exactly one run shape.
        int shapes = (def.grid ? 1 : 0) + (def.runNoSweep ? 1 : 0) +
                     (def.runCustom ? 1 : 0);
        EXPECT_EQ(shapes, 1) << def.name;
        if (def.grid)
            EXPECT_TRUE(static_cast<bool>(def.print)) << def.name;
        // Names resolve back to themselves.
        const BenchDef *found = findBench(def.name);
        ASSERT_NE(found, nullptr) << def.name;
        EXPECT_EQ(found->name, def.name);
    }
    // No duplicate subcommand names.
    for (size_t i = 0; i < regs.size(); ++i)
        for (size_t j = i + 1; j < regs.size(); ++j)
            EXPECT_NE(regs[i].name, regs[j].name);
    EXPECT_EQ(findBench("nonsense"), nullptr);
}

TEST(BenchRegistry, GridFactoriesMatchThePaperShapes)
{
    driver::BenchOptions opts;
    // fig6: 2 isas x 4 threads x 1 mem x 4 policies, minus the 4
    // MMX+OCOUNT skips.
    const BenchDef *fig6 = findBench("fig6");
    ASSERT_NE(fig6, nullptr);
    EXPECT_EQ(fig6->grid(opts).expand().size(), 28u);
    // The mix bench pins six workloads by default but honours an
    // explicit selection.
    const BenchDef *mix = findBench("workload_mix");
    ASSERT_NE(mix, nullptr);
    EXPECT_TRUE(mix->grid(opts).hasExplicitWorkloads());
    EXPECT_EQ(mix->grid(opts).workloadList().size(), 6u);
    opts.workloads = { "paper" };
    EXPECT_FALSE(mix->grid(opts).hasExplicitWorkloads());
    // table2/table3 are the no-sweep entries.
    EXPECT_FALSE(findBench("table2")->hasSweep());
    EXPECT_FALSE(findBench("table3")->hasSweep());
}

// ---------------------------------------------------------------------
// SimService
// ---------------------------------------------------------------------

/** A tiny explicit-axes request that simulates in milliseconds. */
SimRequest
tinyRequest(const std::string &id)
{
    SimRequest req;
    req.id = id;
    req.isas = { "mmx", "mom" };
    req.threads = { 1, 2 };
    req.memModels = { "perfect" };
    req.quick = true;
    req.maxCycles = 100000;
    return req;
}

TEST(SimService, StructuredErrorsInsteadOfExit)
{
    SimService service;

    SimRequest req = tinyRequest("e1");
    req.workloads = { "nonsense" };
    SimResponse resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kUnknownWorkload);
    EXPECT_NE(resp.errorMessage.find("nonsense"), std::string::npos);
    EXPECT_EQ(resp.id, "e1");

    req = tinyRequest("e2");
    req.shardIndex = 5;
    req.shardCount = 3;
    resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kBadShard);

    req = SimRequest();
    req.id = "e3";
    req.bench = "nope";
    resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kUnknownBench);

    req = SimRequest();
    req.id = "e4";
    req.bench = "table2";   // no sweep stage: CLI-only
    resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kNoSweep);

    req = tinyRequest("e5");
    req.isas = { "avx512" };
    resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kBadAxis);

    req = tinyRequest("e6");
    req.threads = { 16 };
    resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kBadAxis);

    // Duplicate axis values would expand duplicate sweep points with
    // identical ids/seeds/cache keys; aliases of the same parsed value
    // ("mmx"/"MMX") collide too.
    req = tinyRequest("e6b");
    req.isas = { "mmx", "MMX" };
    resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kBadAxis);
    EXPECT_NE(resp.errorMessage.find("duplicate"), std::string::npos);
    req = tinyRequest("e6c");
    req.threads = { 1, 2, 1 };
    resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kBadAxis);
    req = tinyRequest("e6d");
    req.policies = { "rr", "round-robin" };
    resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kBadAxis);

    req = tinyRequest("e7");
    req.bench = "fig6";     // bench + explicit axes: ambiguous
    resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kBadRequest);

    req = tinyRequest("e8");
    req.workloads = { "paper", "paper" };
    resp = service.submit(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kBadRequest);

    // Error responses serialize with the structured code.
    std::string json = resp.toJson();
    EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(json.find("\"code\":\"bad_request\""), std::string::npos);
}

TEST(SimService, ExecutesExplicitAxesDeterministically)
{
    SimService service;
    SimResponse resp = service.submit(tinyRequest("r1"));
    ASSERT_TRUE(resp.ok) << resp.errorMessage;
    EXPECT_EQ(resp.id, "r1");
    EXPECT_EQ(resp.totalPoints, 4u);    // 2 isas x 2 threads
    EXPECT_EQ(resp.rows.size(), 4u);
    EXPECT_EQ(resp.simulatedPoints, 4u);
    EXPECT_EQ(resp.cachedPoints, 0u);
    for (const driver::ResultRow &row : resp.rows) {
        EXPECT_EQ(row.workload, "paper");
        EXPECT_GT(row.run.cycles, 0u);
    }
    // Same request again: identical rows (modulo self-measurement).
    SimResponse again = service.submit(tinyRequest("r1"));
    ASSERT_TRUE(again.ok);
    EXPECT_EQ(again.toJson(false), resp.toJson(false));
    // The timed serialization differs only in the timing fields, which
    // toJson(false) zeroes; sanity-check the flag actually strips.
    EXPECT_NE(resp.toJson(false).find("\"wallMs\":0.000"),
              std::string::npos);
}

TEST(SimService, BatchKnobValidatesAndNeverChangesRows)
{
    SimService service;

    // batch < 1 is a structured error, not a panic.
    SimRequest bad = tinyRequest("b0");
    bad.batch = 0;
    SimResponse resp = service.submit(bad);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, errc::kBadRequest);
    EXPECT_NE(resp.errorMessage.find("batch"), std::string::npos);

    // Interleaved execution is an execution knob only: rows are
    // byte-identical to the unbatched submit (modulo timing fields).
    SimResponse plain = service.submit(tinyRequest("b1"));
    ASSERT_TRUE(plain.ok) << plain.errorMessage;
    SimRequest batched = tinyRequest("b1");
    batched.batch = 3;
    SimResponse interleaved = service.submit(batched);
    ASSERT_TRUE(interleaved.ok) << interleaved.errorMessage;
    EXPECT_EQ(interleaved.toJson(false), plain.toJson(false));

    // On the wire the field is optional (default omitted), so older
    // readers of schemaVersion 1 never see it.
    EXPECT_EQ(tinyRequest("b1").toJson().find("\"batch\""),
              std::string::npos);
    EXPECT_NE(batched.toJson().find("\"batch\":3"), std::string::npos);
}

TEST(SimService, ConcurrentSubmitsMatchSerialByteForByte)
{
    // Four distinct requests executed serially, then the same four
    // submitted from four client threads at once. Responses must be
    // byte-identical (timing stripped) — the determinism contract of
    // the service boundary.
    std::vector<SimRequest> reqs;
    reqs.push_back(tinyRequest("c0"));
    reqs.push_back(tinyRequest("c1"));
    reqs[1].threads = { 1 };
    reqs.push_back(tinyRequest("c2"));
    reqs[2].isas = { "mom" };
    reqs.push_back(tinyRequest("c3"));
    reqs[3].policies = { "icount" };

    SimService service;
    std::vector<std::string> serial;
    for (const SimRequest &r : reqs)
        serial.push_back(service.submit(r).toJson(false));

    std::vector<std::string> concurrent(reqs.size());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < reqs.size(); ++i) {
        clients.emplace_back([&, i]() {
            concurrent[i] = service.submit(reqs[i]).toJson(false);
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(concurrent[i], serial[i]) << "request " << i;
}

TEST(SimService, BenchRequestRunsTheRegisteredGrid)
{
    SimService service;
    SimRequest req;
    req.id = "fig6-quick";
    req.bench = "fig6";
    req.quick = true;
    req.maxCycles = 100000;
    SimResponse resp = service.submit(req);
    ASSERT_TRUE(resp.ok) << resp.errorMessage;
    EXPECT_EQ(resp.bench, "fig6");
    EXPECT_EQ(resp.totalPoints, 28u);   // fig6's grid minus skips
    EXPECT_EQ(resp.rows.size(), 28u);
    // Row ids carry the canonical sweep coordinates.
    EXPECT_EQ(resp.rows[0].workload, "paper");
}

// ---------------------------------------------------------------------
// Axis token parsing (case-insensitive across all three axes)
// ---------------------------------------------------------------------

TEST(AxisParse, AcceptsEveryAxisTokenCaseInsensitively)
{
    isa::SimdIsa isa;
    for (const char *s : { "mmx", "Mmx", "MMX" }) {
        EXPECT_TRUE(parseIsaToken(s, isa)) << s;
        EXPECT_EQ(isa, isa::SimdIsa::Mmx) << s;
    }
    for (const char *s : { "mom", "MOM", "MoM" }) {
        EXPECT_TRUE(parseIsaToken(s, isa)) << s;
        EXPECT_EQ(isa, isa::SimdIsa::Mom) << s;
    }

    mem::MemModel mm;
    for (const char *s : { "perfect", "Perfect", "PERFECT" }) {
        EXPECT_TRUE(parseMemModelToken(s, mm)) << s;
        EXPECT_EQ(mm, mem::MemModel::Perfect) << s;
    }
    EXPECT_TRUE(parseMemModelToken("CONVENTIONAL", mm));
    EXPECT_EQ(mm, mem::MemModel::Conventional);
    EXPECT_TRUE(parseMemModelToken("Decoupled", mm));
    EXPECT_EQ(mm, mem::MemModel::Decoupled);

    cpu::FetchPolicy fp;
    for (const char *s : { "rr", "RR", "round-robin", "Round-Robin" }) {
        EXPECT_TRUE(parsePolicyToken(s, fp)) << s;
        EXPECT_EQ(fp, cpu::FetchPolicy::RoundRobin) << s;
    }
    for (const char *s : { "ic", "ICount", "icount" }) {
        EXPECT_TRUE(parsePolicyToken(s, fp)) << s;
        EXPECT_EQ(fp, cpu::FetchPolicy::ICount) << s;
    }
    for (const char *s : { "oc", "OCount", "OCOUNT" }) {
        EXPECT_TRUE(parsePolicyToken(s, fp)) << s;
        EXPECT_EQ(fp, cpu::FetchPolicy::OCount) << s;
    }
    for (const char *s : { "bl", "BL", "Balance", "balance" }) {
        EXPECT_TRUE(parsePolicyToken(s, fp)) << s;
        EXPECT_EQ(fp, cpu::FetchPolicy::Balance) << s;
    }
}

TEST(AxisParse, RejectsNonTokens)
{
    isa::SimdIsa isa;
    for (const char *s : { "", "mmx2", "sse", "m mx" })
        EXPECT_FALSE(parseIsaToken(s, isa)) << s;
    mem::MemModel mm;
    for (const char *s : { "", "perfectx", "fast" })
        EXPECT_FALSE(parseMemModelToken(s, mm)) << s;
    cpu::FetchPolicy fp;
    for (const char *s : { "", "round robin", "roundrobin", "rrx" })
        EXPECT_FALSE(parsePolicyToken(s, fp)) << s;
}

TEST(SimService, AxisSpellingsAreCaseInsensitive)
{
    // "Mmx"/"Round-Robin" used to reject while "mmx"/"rr" passed; all
    // spellings of one value must now name the same sweep point.
    SimService service;
    SimRequest req = tinyRequest("cs1");
    req.isas = { "MMX" };
    req.threads = { 1 };
    req.memModels = { "Perfect" };
    req.policies = { "Round-Robin" };
    SimResponse upper = service.submit(req);
    ASSERT_TRUE(upper.ok) << upper.errorMessage;

    req.id = "cs1";     // same id => byte-identical comparison works
    req.isas = { "mmx" };
    req.memModels = { "perfect" };
    req.policies = { "rr" };
    SimResponse lower = service.submit(req);
    ASSERT_TRUE(lower.ok) << lower.errorMessage;
    EXPECT_EQ(upper.toJson(false), lower.toJson(false));

    // Case-insensitivity extends to duplicate detection: two spellings
    // of one value are one value, not two axis entries.
    req.id = "cs2";
    req.isas = { "mmx", "MMX" };
    SimResponse dup = service.submit(req);
    EXPECT_FALSE(dup.ok);
    EXPECT_EQ(dup.errorCode, errc::kBadAxis);
}

// ---------------------------------------------------------------------
// Malformed-line id salvage (batch/serve error correlation)
// ---------------------------------------------------------------------

TEST(SalvageTopLevelId, RecoversIdsFromUnparseableLines)
{
    // Truncated object: still has a readable top-level id.
    EXPECT_EQ(salvageTopLevelId("{\"id\":\"req-17\",\"threads\":[1,"),
              "req-17");
    // Key order doesn't matter.
    EXPECT_EQ(salvageTopLevelId(
                  "{\"bench\":\"fig6\",\"id\":\"later\" nonsense"),
              "later");
    // Escapes in the value decode.
    EXPECT_EQ(salvageTopLevelId("{\"id\":\"a\\\"b\\\\c\", xx"),
              "a\"b\\c");
    // A nested "id" must not leak out as the request id.
    EXPECT_EQ(salvageTopLevelId(
                  "{\"meta\":{\"id\":\"inner\"},\"threads\":bad"),
              "");
    // Arrays are depth too.
    EXPECT_EQ(salvageTopLevelId("{\"a\":[{\"id\":\"x\"}], bad"), "");
    // Non-string ids and garbage salvage nothing.
    EXPECT_EQ(salvageTopLevelId("{\"id\":42, bad"), "");
    EXPECT_EQ(salvageTopLevelId("complete garbage"), "");
    EXPECT_EQ(salvageTopLevelId(""), "");
}

// ---------------------------------------------------------------------
// Client tagging (request-carried, echoed in responses)
// ---------------------------------------------------------------------

TEST(SimRequest, ClientFieldRoundTripsAndStaysOptional)
{
    SimRequest req = tinyRequest("tag1");
    // Untagged requests keep the PR 5 wire shape exactly: no "client"
    // key is serialized at all.
    EXPECT_EQ(req.toJson().find("\"client\""), std::string::npos);

    req.client = "farm-worker-3";
    SimRequest back;
    std::string error;
    ASSERT_TRUE(SimRequest::fromJson(req.toJson(), back, error))
        << error;
    EXPECT_EQ(back.client, "farm-worker-3");
    EXPECT_EQ(back.toJson(), req.toJson());

    SimResponse resp;
    resp.id = "tag1";
    resp.ok = true;
    EXPECT_EQ(resp.toJson().find("\"client\""), std::string::npos);
    resp.client = "farm-worker-3";
    EXPECT_NE(resp.toJson().find("\"client\":\"farm-worker-3\""),
              std::string::npos);
}

TEST(SimService, ShardedRequestReturnsOnlyItsSlice)
{
    SimService service;
    SimRequest req = tinyRequest("s1");
    req.shardIndex = 1;
    req.shardCount = 2;
    SimResponse first = service.submit(req);
    ASSERT_TRUE(first.ok) << first.errorMessage;
    req.id = "s2";
    req.shardIndex = 2;
    SimResponse second = service.submit(req);
    ASSERT_TRUE(second.ok) << second.errorMessage;
    EXPECT_EQ(first.totalPoints, 4u);
    EXPECT_EQ(second.totalPoints, 4u);
    EXPECT_EQ(first.rows.size() + second.rows.size(), 4u);
    EXPECT_GT(first.rows.size(), 0u);
    EXPECT_GT(second.rows.size(), 0u);
}

} // namespace
} // namespace momsim::svc
