/**
 * @file
 * Unit tests for the emulation-library infrastructure: TraceBuilder code
 * layout (routines, loops, PC reuse), simulated memory, register
 * allocation, the three emitters' dataflow, and Program accounting.
 */

#include <gtest/gtest.h>

#include "trace/builder.hh"
#include "trace/mmx_emitter.hh"
#include "trace/mom_emitter.hh"
#include "trace/packed.hh"
#include "trace/scalar_emitter.hh"

namespace momsim::trace
{
namespace
{

constexpr uint32_t kBase = 16u << 20;

TraceBuilder
makeBuilder(isa::SimdIsa simd = isa::SimdIsa::Mmx)
{
    return TraceBuilder("test", simd, kBase);
}

TEST(Builder, AllocRespectsAlignment)
{
    TraceBuilder tb = makeBuilder();
    uint32_t a = tb.alloc(10, 64);
    uint32_t b = tb.alloc(10, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
    uint32_t c = tb.alloc(1, 1);
    EXPECT_GE(c, b + 10);
}

TEST(Builder, MemoryPokePeekWidths)
{
    TraceBuilder tb = makeBuilder();
    uint32_t a = tb.alloc(64);
    tb.poke8(a, 0xAB);
    EXPECT_EQ(tb.peek8(a), 0xAB);
    tb.poke16(a + 2, 0xBEEF);
    EXPECT_EQ(tb.peek16(a + 2), 0xBEEF);
    tb.poke32(a + 4, 0x12345678u);
    EXPECT_EQ(tb.peek32(a + 4), 0x12345678u);
    tb.poke64(a + 8, 0x0123456789ABCDEFull);
    EXPECT_EQ(tb.peek64(a + 8), 0x0123456789ABCDEFull);
    // little-endian composition
    EXPECT_EQ(tb.peek8(a + 8), 0xEF);
}

TEST(Builder, RoutineCallEmitsJsrRetAndReusesPcs)
{
    TraceBuilder tb = makeBuilder();
    ScalarEmitter s(tb);

    for (int pass = 0; pass < 2; ++pass) {
        s.call("kernel");
        s.imm(1);
        s.imm(2);
        s.ret();
    }
    Program p = tb.take();
    // Layout: JSR, LDA, LDA, RET, JSR, LDA, LDA, RET
    ASSERT_EQ(p.size(), 8u);
    EXPECT_EQ(p.insts()[0].opClass(), isa::OpClass::Jump);
    EXPECT_EQ(p.insts()[3].opClass(), isa::OpClass::Jump);
    // Same routine => same PCs on both invocations.
    EXPECT_EQ(p.insts()[1].pc, p.insts()[5].pc);
    EXPECT_EQ(p.insts()[2].pc, p.insts()[6].pc);
    // JSR targets the routine body.
    EXPECT_EQ(p.insts()[0].addr, p.insts()[1].pc);
}

TEST(Builder, LoopBackReemitsIdenticalBodyPcs)
{
    TraceBuilder tb2 = makeBuilder();
    ScalarEmitter s2(tb2);
    IVal counter = s2.imm(3);
    uint32_t h = s2.loopHead();
    for (int i = 0; i < 3; ++i) {
        s2.imm(100 + i);
        counter = s2.subi(counter, 1);
        s2.loopBack(h, counter, i + 1 < 3);
    }
    Program p = tb2.take();
    // insts: LDA, [LDA, SUBL, BNE] x3
    ASSERT_EQ(p.size(), 10u);
    EXPECT_EQ(p.insts()[1].pc, p.insts()[4].pc);
    EXPECT_EQ(p.insts()[4].pc, p.insts()[7].pc);
    // Backward branches: first two taken, last not taken.
    EXPECT_TRUE(p.insts()[3].taken());
    EXPECT_TRUE(p.insts()[6].taken());
    EXPECT_FALSE(p.insts()[9].taken());
    EXPECT_EQ(p.insts()[3].addr, p.insts()[1].pc);
}

TEST(Builder, RegisterAllocatorAvoidsReservedIntRegs)
{
    TraceBuilder tb = makeBuilder();
    for (int i = 0; i < 200; ++i) {
        isa::RegRef r = tb.allocInt();
        EXPECT_EQ(isa::regClass(r), isa::RegClass::Int);
        EXPECT_NE(isa::regIndex(r), isa::kSlRegIndex);
        EXPECT_NE(isa::regIndex(r), isa::kZeroRegIndex);
    }
    for (int i = 0; i < 40; ++i) {
        isa::RegRef r = tb.allocMom();
        EXPECT_EQ(isa::regClass(r), isa::RegClass::Mom);
        EXPECT_LT(isa::regIndex(r), 16);
    }
}

TEST(Scalar, ArithmeticComputesAndChainsRegs)
{
    TraceBuilder tb = makeBuilder();
    ScalarEmitter s(tb);
    IVal a = s.imm(10);
    IVal b = s.imm(32);
    IVal c = s.add(a, b);
    EXPECT_EQ(c.v, 42);
    IVal d = s.muli(c, 3);
    EXPECT_EQ(d.v, 126);
    IVal e = s.srai(s.subi(d, 2), 2);
    EXPECT_EQ(e.v, 31);
    Program p = tb.take();
    // The ADDL must read both LDA destinations.
    const auto &add = p.insts()[2];
    EXPECT_EQ(add.src0, a.reg);
    EXPECT_EQ(add.src1, b.reg);
    EXPECT_EQ(add.dst, c.reg);
}

TEST(Scalar, MemoryRoundTripThroughSimulatedMemory)
{
    TraceBuilder tb = makeBuilder();
    ScalarEmitter s(tb);
    uint32_t buf = tb.alloc(64);
    IVal base = s.imm(static_cast<int32_t>(buf));
    s.storeU8(base, 0, s.imm(200));
    s.storeI16(base, 2, s.imm(-1234));
    s.storeI32(base, 4, s.imm(0x7FFFABCD));
    EXPECT_EQ(s.loadU8(base, 0).v, 200);
    EXPECT_EQ(s.loadS16(base, 2).v, -1234);
    EXPECT_EQ(s.loadI32(base, 4).v, 0x7FFFABCD);
    EXPECT_EQ(s.loadU16(base, 2).v, 0x10000 - 1234);
}

TEST(Scalar, FloatOpsAndConversion)
{
    TraceBuilder tb = makeBuilder();
    ScalarEmitter s(tb);
    FVal x = s.fconst(1.5f);
    FVal y = s.fconst(2.25f);
    EXPECT_FLOAT_EQ(s.fadd(x, y).v, 3.75f);
    EXPECT_FLOAT_EQ(s.fmul(x, y).v, 3.375f);
    EXPECT_FLOAT_EQ(s.fsqrt(s.fconst(9.0f)).v, 3.0f);
    EXPECT_EQ(s.cvtFI(s.fconst(-2.7f)).v, -2);
    EXPECT_FLOAT_EQ(s.cvtIF(s.imm(7)).v, 7.0f);
    EXPECT_EQ(s.fcmplt(x, y).v, 1);
    uint32_t buf = tb.alloc(16);
    IVal b = s.imm(static_cast<int32_t>(buf));
    s.storeF(b, 0, y);
    EXPECT_FLOAT_EQ(s.loadF(b, 0).v, 2.25f);
}

TEST(Scalar, SelectAndCompare)
{
    TraceBuilder tb = makeBuilder();
    ScalarEmitter s(tb);
    IVal t = s.imm(11), f = s.imm(22);
    EXPECT_EQ(s.cmovne(s.imm(1), t, f).v, 11);
    EXPECT_EQ(s.cmovne(s.imm(0), t, f).v, 22);
    EXPECT_EQ(s.cmplt(s.imm(-1), s.imm(1)).v, 1);
    EXPECT_EQ(s.cmpult(s.imm(-1), s.imm(1)).v, 0);   // unsigned
    EXPECT_EQ(s.cmpeqi(s.imm(5), 5).v, 1);
}

TEST(Mmx, LoadComputeStore)
{
    TraceBuilder tb = makeBuilder();
    ScalarEmitter s(tb);
    MmxEmitter mx(tb);
    uint32_t buf = tb.alloc(64);
    tb.poke64(buf, packW(100, 200, -300, 400));
    tb.poke64(buf + 8, packW(1, 2, 3, 4));
    IVal base = s.imm(static_cast<int32_t>(buf));
    MVal a = mx.loadQ(base, 0);
    MVal b = mx.loadQ(base, 8);
    MVal c = mx.paddw(a, b);
    mx.storeQ(base, 16, c);
    EXPECT_EQ(laneW(tb.peek64(buf + 16), 0), 101);
    EXPECT_EQ(laneW(tb.peek64(buf + 16), 2), -297);
    // SAD through the paper's reduction extras
    IVal sum = mx.phsumwd(c);
    EXPECT_EQ(sum.v, 101 + 202 - 297 + 404);
}

TEST(Mmx, SplatBuildsTwoInstructions)
{
    TraceBuilder tb = makeBuilder();
    ScalarEmitter s(tb);
    MmxEmitter mx(tb);
    size_t before = tb.instCount();
    MVal sp = mx.splatW(s.imm(-9));
    EXPECT_EQ(tb.instCount(), before + 3);  // LDA + MOVDTM + PSHUFW
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(laneW(sp.v, i), -9);
}

TEST(Mom, SetLenGatesStreamOps)
{
    TraceBuilder tb = makeBuilder(isa::SimdIsa::Mom);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    mv.setLen(s.imm(8));
    EXPECT_EQ(mv.curLen(), 8);
    Program p = tb.take();
    const auto &setlen = p.insts().back();
    EXPECT_EQ(setlen.opcode(), isa::Op::MSETLEN);
    EXPECT_EQ(setlen.dst, isa::slReg());
}

TEST(Mom, StridedLoadComputesElementAddresses)
{
    TraceBuilder tb = makeBuilder(isa::SimdIsa::Mom);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t buf = tb.alloc(4096);
    for (int i = 0; i < 8; ++i)
        tb.poke64(buf + 256u * i, splatW(static_cast<int16_t>(i)));
    mv.setLen(s.imm(8));
    IVal base = s.imm(static_cast<int32_t>(buf));
    SVal v = mv.loadQ(base, 0, 256);
    ASSERT_EQ(v.len, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(laneW(v.e[i], 0), i);

    Program p = tb.take();
    const auto &ld = p.insts().back();
    EXPECT_EQ(ld.opcode(), isa::Op::MLDQS);
    EXPECT_EQ(ld.streamLen, 8);
    EXPECT_EQ(ld.stride, 256);
    EXPECT_EQ(ld.memAccesses(), 8u);
    EXPECT_EQ(ld.elementAddr(3), buf + 768u);
    EXPECT_EQ(ld.eqInsts(), 8u);
}

TEST(Mom, StreamArithmeticMapsOverElements)
{
    TraceBuilder tb = makeBuilder(isa::SimdIsa::Mom);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t buf = tb.alloc(256);
    for (int i = 0; i < 4; ++i) {
        tb.poke64(buf + 8u * i, packW(10 * (i + 1), 0, 0, 0));
        tb.poke64(buf + 64 + 8u * i, packW(1, 0, 0, 0));
    }
    mv.setLen(s.imm(4));
    IVal base = s.imm(static_cast<int32_t>(buf));
    SVal a = mv.loadQ(base, 0, 8);
    SVal b = mv.loadQ(base, 64, 8);
    SVal c = mv.addQH(a, b);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(laneW(c.e[i], 0), 10 * (i + 1) + 1);
    SVal d = mv.subVSQH(c, MVal{ splatW(1), isa::mmxReg(0) });
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(laneW(d.e[i], 0), 10 * (i + 1));
}

TEST(Mom, WideningLoadAndNarrowingStore)
{
    TraceBuilder tb = makeBuilder(isa::SimdIsa::Mom);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t src = tb.alloc(64), dst = tb.alloc(64);
    for (int i = 0; i < 16; ++i)
        tb.poke8(src + i, static_cast<uint8_t>(240 + i));
    mv.setLen(s.imm(4));
    IVal sb = s.imm(static_cast<int32_t>(src));
    IVal db = s.imm(static_cast<int32_t>(dst));
    SVal pix = mv.loadUB2QH(sb, 0, 4);
    EXPECT_EQ(laneW(pix.e[0], 0), 240);
    EXPECT_EQ(laneW(pix.e[3], 3), 255);
    // add 20 with unsigned-byte saturation on the way back
    SVal bright = mv.addVSQH(pix, MVal{ splatW(20), isa::mmxReg(1) });
    mv.storeQH2UB(db, 0, 4, bright);
    EXPECT_EQ(tb.peek8(dst + 0), 255);   // 260 saturates
    EXPECT_EQ(tb.peek8(dst + 15), 255);
}

TEST(Mom, AccumulatorDotProduct)
{
    TraceBuilder tb = makeBuilder(isa::SimdIsa::Mom);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t buf = tb.alloc(512);
    // a = [1..16] per lane0; b = 2 everywhere
    for (int i = 0; i < 16; ++i) {
        tb.poke64(buf + 8u * i,
                  packW(static_cast<int16_t>(i + 1), 0, 0, 0));
        tb.poke64(buf + 128 + 8u * i, packW(2, 2, 2, 2));
    }
    mv.setLen(s.imm(16));
    IVal base = s.imm(static_cast<int32_t>(buf));
    SVal a = mv.loadQ(base, 0, 8);
    SVal b = mv.loadQ(base, 128, 8);
    mv.clrAcc(0);
    mv.accMacQH(0, a, b);
    IVal dot = mv.raccToInt(0);
    // sum(1..16) * 2 = 272 in lane 0
    EXPECT_EQ(dot.v, 272);
}

TEST(Mom, AccumulatorSad)
{
    TraceBuilder tb = makeBuilder(isa::SimdIsa::Mom);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t buf = tb.alloc(512);
    for (int i = 0; i < 8; ++i) {
        tb.poke64(buf + 8u * i, splatB(100));
        tb.poke64(buf + 128 + 8u * i, splatB(103));
    }
    mv.setLen(s.imm(8));
    IVal base = s.imm(static_cast<int32_t>(buf));
    SVal a = mv.loadQ(base, 0, 8);
    SVal b = mv.loadQ(base, 128, 8);
    mv.clrAcc(1);
    mv.accSadOB(1, a, b);
    EXPECT_EQ(mv.raccToInt(1).v, 3 * 8 * 8);
}

TEST(Mom, StreamOpsCarrySlDependence)
{
    TraceBuilder tb = makeBuilder(isa::SimdIsa::Mom);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t buf = tb.alloc(256);
    mv.setLen(s.imm(4));
    IVal base = s.imm(static_cast<int32_t>(buf));
    SVal a = mv.loadQ(base, 0, 8);
    (void)a;
    Program p = tb.take();
    const auto &ld = p.insts().back();
    EXPECT_EQ(ld.src2, isa::slReg());
}

TEST(Program, MixSummaryCountsEquivalents)
{
    TraceBuilder tb = makeBuilder(isa::SimdIsa::Mom);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t buf = tb.alloc(512);
    IVal base = s.imm(static_cast<int32_t>(buf));   // 1 int
    mv.setLen(s.imm(10));                            // 1 int (LDA) + MSETLEN
    SVal a = mv.loadQ(base, 0, 8);                   // mem x10
    SVal b = mv.addQH(a, a);                         // simd x10
    mv.storeQ(base, 256, 8, b);                      // mem x10
    Program p = tb.take();
    MixSummary m = p.mix();
    EXPECT_EQ(m.records, 6u);
    EXPECT_EQ(m.eqInsts, 2u + 1 + 10 + 10 + 10);
    EXPECT_EQ(m.memOps, 20u);
    EXPECT_EQ(m.simdOps, 10u + 1);   // stream add x10 + MSETLEN (ctl)
    EXPECT_EQ(m.intOps, 2u);
    EXPECT_EQ(m.memAccesses, 20u);
}

TEST(Program, RebaseShiftsCodeAndData)
{
    TraceBuilder tb = makeBuilder();
    ScalarEmitter s(tb);
    uint32_t buf = tb.alloc(64);
    IVal base = s.imm(static_cast<int32_t>(buf));
    s.storeU8(base, 0, s.imm(1));
    Program p = tb.take();
    Program q = p.rebased(0x100000, "copy");
    ASSERT_EQ(q.size(), p.size());
    for (size_t i = 0; i < p.size(); ++i) {
        EXPECT_EQ(q.insts()[i].pc, p.insts()[i].pc + 0x100000);
        if (p.insts()[i].isMemory()) {
            EXPECT_EQ(q.insts()[i].addr, p.insts()[i].addr + 0x100000);
        }
    }
    EXPECT_EQ(q.name(), "copy");
}

} // namespace
} // namespace momsim::trace
