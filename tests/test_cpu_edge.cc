/**
 * @file
 * Edge-case pipeline tests: rename/flush interactions, physical
 * register pool recovery, stream-length serialization, store-buffer
 * back-pressure at commit, and cross-check properties between the two
 * ISAs' pipelines.
 */

#include <gtest/gtest.h>

#include "cpu/smt_core.hh"
#include "trace/builder.hh"
#include "trace/mom_emitter.hh"
#include "trace/scalar_emitter.hh"

namespace momsim::cpu
{
namespace
{

using trace::IVal;
using trace::MomEmitter;
using trace::Program;
using trace::ScalarEmitter;
using trace::SVal;
using trace::TraceBuilder;

constexpr uint32_t kBase = 16u << 20;

uint64_t
runProgram(const Program &prog, CoreConfig cfg,
           mem::MemModel model = mem::MemModel::Perfect,
           uint64_t maxCycles = 3'000'000, uint64_t *commits = nullptr)
{
    auto mem = mem::makeMemorySystem(model);
    SmtCore core(cfg, *mem);
    for (int tid = 0; tid < cfg.numThreads; ++tid)
        core.attachProgram(tid, &prog);
    auto allIdle = [&] {
        for (int tid = 0; tid < cfg.numThreads; ++tid) {
            if (!core.threadIdle(tid))
                return false;
        }
        return true;
    };
    while (!allIdle() && core.now() < maxCycles)
        core.step();
    EXPECT_LT(core.now(), maxCycles) << "hang";
    if (commits)
        *commits = core.committedRecords();
    return core.now();
}

TEST(CpuEdge, FlushInsideStreamOperationSquashesCleanly)
{
    // A mispredicted branch right before long stream ops: the stream
    // engine must drop squashed streams and the re-fetched copies must
    // complete exactly once.
    TraceBuilder tb("t", isa::SimdIsa::Mom, kBase);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t buf = tb.alloc(1 << 14);
    mv.setLen(s.imm(16));
    IVal base = s.imm(static_cast<int32_t>(buf));
    uint32_t lfsr = 0xBEEF;
    for (int i = 0; i < 150; ++i) {
        IVal c = s.imm(static_cast<int32_t>(lfsr & 1));
        s.condBr(c, (lfsr & 1) != 0);          // random => mispredicts
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
        SVal v = mv.loadQ(base, (i % 16) * 128, 8);
        mv.storeQ(base, 8192 + (i % 16) * 128, 8, v);
    }
    Program p = tb.take();
    uint64_t commits = 0;
    runProgram(p, CoreConfig::preset(1, isa::SimdIsa::Mom),
               mem::MemModel::Conventional, 3'000'000, &commits);
    EXPECT_EQ(commits, p.size());
}

TEST(CpuEdge, RegisterPoolRecoversAfterFlushStorm)
{
    // Heavy mispredicts + dest-writing instructions: if flush leaked
    // physical registers, dispatch would wedge long before the end.
    TraceBuilder tb("t", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    uint32_t lfsr = 0x1234;
    for (int i = 0; i < 4000; ++i) {
        IVal a = s.imm(i);
        IVal b = s.addi(a, 3);
        s.condBr(b, (lfsr & 1) != 0);
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
    }
    Program p = tb.take();
    uint64_t commits = 0;
    runProgram(p, CoreConfig::preset(1, isa::SimdIsa::Mmx),
               mem::MemModel::Perfect, 3'000'000, &commits);
    EXPECT_EQ(commits, p.size());
}

TEST(CpuEdge, StreamLengthWriteSerializesAgainstStreams)
{
    // Alternating MSETLEN and dependent stream ops: every stream op
    // reads the SL register, so the chain must execute in order and
    // the whole program must commit.
    TraceBuilder tb("t", isa::SimdIsa::Mom, kBase);
    ScalarEmitter s(tb);
    MomEmitter mv(tb);
    uint32_t buf = tb.alloc(1 << 14);
    IVal base = s.imm(static_cast<int32_t>(buf));
    for (int len : { 4, 16, 2, 8, 16, 1, 16 }) {
        mv.setLen(s.imm(len));
        SVal v = mv.loadQ(base, 0, 8);
        mv.storeQ(base, 4096, 8, v);
    }
    Program p = tb.take();
    uint64_t commits = 0;
    uint64_t cycles = runProgram(p, CoreConfig::preset(1, isa::SimdIsa::Mom),
                                 mem::MemModel::Perfect, 100'000, &commits);
    EXPECT_EQ(commits, p.size());
    EXPECT_GT(cycles, 30u);     // streams cannot all overlap
}

TEST(CpuEdge, CommitStallsWhenWriteBufferSaturates)
{
    // A dense burst of stores to distinct lines must back-pressure
    // commit through the 8-entry coalescing write buffer without losing
    // any instruction.
    TraceBuilder tb("t", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    uint32_t buf = tb.alloc(1 << 16);
    IVal base = s.imm(static_cast<int32_t>(buf));
    IVal v = s.imm(42);
    for (int i = 0; i < 600; ++i)
        s.storeI32(base, i * 64, v);     // one line each
    Program p = tb.take();
    uint64_t commits = 0;
    uint64_t cycles = runProgram(p, CoreConfig::preset(1, isa::SimdIsa::Mmx),
                                 mem::MemModel::Conventional, 1'000'000,
                                 &commits);
    EXPECT_EQ(commits, p.size());
    // Draining 600 distinct lines through the L2 takes many cycles.
    EXPECT_GT(cycles, 1200u);
}

TEST(CpuEdge, EightContextsOfMixedIsaProgramsAreIsolated)
{
    // Same program attached to all 8 contexts: total commits must be
    // exactly 8x the trace, and per-thread committed counts must agree
    // (no cross-thread rename contamination).
    TraceBuilder tb("t", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    IVal acc = s.imm(0);
    for (int i = 0; i < 800; ++i)
        acc = s.addi(acc, 1);
    Program p = tb.take();

    CoreConfig cfg = CoreConfig::preset(8, isa::SimdIsa::Mmx);
    auto mem = mem::makeMemorySystem(mem::MemModel::Perfect);
    SmtCore core(cfg, *mem);
    for (int t = 0; t < 8; ++t)
        core.attachProgram(t, &p);
    while (true) {
        bool idle = true;
        for (int t = 0; t < 8; ++t)
            idle = idle && core.threadIdle(t);
        if (idle || core.now() > 1'000'000)
            break;
        core.step();
    }
    EXPECT_EQ(core.committedRecords(), p.size() * 8);
    for (int t = 0; t < 8; ++t)
        EXPECT_EQ(core.threadCommittedEq(t), p.mix().eqInsts) << t;
}

TEST(CpuEdge, MispredictPenaltyIsVisibleInCycles)
{
    // Identical work, one version with taken/not-taken noise branches,
    // one with perfectly biased branches: the noisy one must be slower.
    auto build = [](bool noisy) {
        TraceBuilder tb("t", isa::SimdIsa::Mmx, kBase);
        ScalarEmitter s(tb);
        uint32_t lfsr = 0x7777;
        for (int i = 0; i < 3000; ++i) {
            IVal a = s.imm(i);
            bool taken = noisy ? (lfsr & 1) != 0 : true;
            s.condBr(a, taken);
            lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
        }
        return tb.take();
    };
    Program biased = build(false);
    Program noisy = build(true);
    uint64_t cyclesBiased = runProgram(
        biased, CoreConfig::preset(1, isa::SimdIsa::Mmx));
    uint64_t cyclesNoisy = runProgram(
        noisy, CoreConfig::preset(1, isa::SimdIsa::Mmx));
    EXPECT_GT(cyclesNoisy, cyclesBiased + cyclesBiased / 4);
}

TEST(CpuEdge, DivergentQueuesDoNotBlockEachOther)
{
    // FP divides (unpipelined, 16 cycles) must not stop independent
    // integer work from flowing: IPC stays well above the FP-only rate.
    TraceBuilder tb("t", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    trace::FVal d = s.fconst(3.0f);
    for (int i = 0; i < 200; ++i) {
        d = s.fdiv(d, s.fconst(1.01f));
        for (int k = 0; k < 8; ++k)
            s.imm(k);
    }
    Program p = tb.take();
    uint64_t commits = 0;
    uint64_t cycles = runProgram(p, CoreConfig::preset(1, isa::SimdIsa::Mmx),
                                 mem::MemModel::Perfect, 1'000'000,
                                 &commits);
    EXPECT_EQ(commits, p.size());
    // 200 chained fdivs alone need >= 3200 cycles; the integer work
    // must hide underneath rather than extend it much.
    EXPECT_LT(cycles, 4600u);
    EXPECT_GT(cycles, 3100u);
}

} // namespace
} // namespace momsim::cpu
