/**
 * @file
 * Unit tests for the common substrate: logging, RNG, fixed point, stats,
 * bit I/O.
 */

#include <gtest/gtest.h>

#include "common/bitio.hh"
#include "common/fixed.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace momsim
{
namespace
{

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strfmt("%05.1f", 3.25), "003.2");
    EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedResetsSequence)
{
    Rng a(7);
    uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(99);
    for (uint64_t bound : { 1ull, 2ull, 7ull, 255ull, 100000ull }) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(17);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Fixed, SaturationBoundaries)
{
    EXPECT_EQ(satS16(40000), 32767);
    EXPECT_EQ(satS16(-40000), -32768);
    EXPECT_EQ(satS16(1234), 1234);
    EXPECT_EQ(satU8(300), 255);
    EXPECT_EQ(satU8(-5), 0);
    EXPECT_EQ(satU8(128), 128);
    EXPECT_EQ(satS8(200), 127);
    EXPECT_EQ(satS8(-200), -128);
    EXPECT_EQ(satU16(70000), 65535);
    EXPECT_EQ(satU16(-1), 0);
}

TEST(Fixed, SatAddSub16)
{
    EXPECT_EQ(satAdd16(30000, 30000), 32767);
    EXPECT_EQ(satAdd16(-30000, -30000), -32768);
    EXPECT_EQ(satAdd16(100, 23), 123);
    EXPECT_EQ(satSub16(-30000, 30000), -32768);
    EXPECT_EQ(satSub16(5, 3), 2);
}

TEST(Fixed, GsmMultCorners)
{
    EXPECT_EQ(gsmMult(-32768, -32768), 32767);
    EXPECT_EQ(gsmMultR(-32768, -32768), 32767);
    EXPECT_EQ(gsmMult(16384, 16384), 8192);   // 0.5 * 0.5 = 0.25 in Q15
    EXPECT_EQ(gsmMultR(16384, 16384), 8192);
    EXPECT_EQ(gsmMult(32767, 0), 0);
}

TEST(Fixed, AbsAndShifts)
{
    EXPECT_EQ(satAbs16(-32768), 32767);
    EXPECT_EQ(satAbs16(-5), 5);
    EXPECT_EQ(satAbs16(5), 5);
    EXPECT_EQ(shl16(1, 3), 8);
    EXPECT_EQ(shl16(20000, 2), 32767);       // saturates
    EXPECT_EQ(shl16(8, -2), 2);              // negative count shifts right
    EXPECT_EQ(shr16(8, 2), 2);
    EXPECT_EQ(shr16(8, -2), 32);
}

TEST(Fixed, Norm32)
{
    EXPECT_EQ(norm32(0), 0);
    EXPECT_EQ(norm32(0x40000000), 0);
    EXPECT_EQ(norm32(1), 30);
    EXPECT_EQ(norm32(-1), 31);
    EXPECT_EQ(norm32(-0x40000001), 0);
}

TEST(Stats, CounterAndRatio)
{
    StatGroup g("core");
    g.counter("cycles") = 100;
    g.counter("insts") = 250;
    EXPECT_EQ(g.get("cycles"), 100u);
    EXPECT_DOUBLE_EQ(g.ratio("insts", "cycles"), 2.5);
    EXPECT_DOUBLE_EQ(g.ratio("insts", "absent"), 0.0);
    EXPECT_EQ(g.get("absent"), 0u);
}

TEST(Stats, ClearZeroes)
{
    StatGroup g("x");
    g.counter("a") = 7;
    g.clear();
    EXPECT_EQ(g.get("a"), 0u);
}

TEST(Stats, DumpContainsEntries)
{
    StatGroup g("grp");
    g.counter("hits") = 3;
    std::string d = g.dump();
    EXPECT_NE(d.find("grp.hits = 3"), std::string::npos);
}

TEST(BitIo, RoundTripVariousWidths)
{
    BitWriter w;
    w.put(0x5, 3);
    w.put(0x1234, 16);
    w.put(1, 1);
    w.put(0xABCDEF, 24);
    w.alignByte();
    BitReader r(w.bytes());
    EXPECT_EQ(r.get(3), 0x5u);
    EXPECT_EQ(r.get(16), 0x1234u);
    EXPECT_EQ(r.get(1), 1u);
    EXPECT_EQ(r.get(24), 0xABCDEFu);
}

TEST(BitIo, PeekDoesNotConsume)
{
    BitWriter w;
    w.put(0xA, 4);
    w.alignByte();
    BitReader r(w.bytes());
    EXPECT_EQ(r.peek(4), 0xAu);
    EXPECT_EQ(r.peek(4), 0xAu);
    EXPECT_EQ(r.get(4), 0xAu);
}

TEST(BitIo, AlignPadsWithZeros)
{
    BitWriter w;
    w.put(1, 1);
    w.alignByte();
    EXPECT_EQ(w.bitCount(), 8u);
    EXPECT_EQ(w.bytes().size(), 1u);
    EXPECT_EQ(w.bytes()[0], 0x80);
}

TEST(BitIo, ReadPastEndYieldsZeros)
{
    BitWriter w;
    w.put(0xFF, 8);
    BitReader r(w.bytes());
    EXPECT_EQ(r.get(8), 0xFFu);
    EXPECT_EQ(r.get(8), 0u);
    EXPECT_TRUE(r.exhausted());
}

TEST(BitIo, LongRandomRoundTrip)
{
    Rng rng(42);
    BitWriter w;
    std::vector<std::pair<uint32_t, int>> items;
    for (int i = 0; i < 5000; ++i) {
        int bits = static_cast<int>(rng.below(24)) + 1;
        uint32_t v = static_cast<uint32_t>(rng.next()) &
                     ((bits == 32) ? 0xFFFFFFFFu : ((1u << bits) - 1));
        items.emplace_back(v, bits);
        w.put(v, bits);
    }
    w.alignByte();
    BitReader r(w.bytes());
    for (auto &[v, bits] : items)
        ASSERT_EQ(r.get(bits), v);
}

} // namespace
} // namespace momsim
