/**
 * @file
 * Tests for the simulation kernel's throughput machinery: the
 * readiness-tracking issue queues (pending-producer counts, wakeup
 * lists, generation-tagged records surviving flush/slot recycling),
 * queue-saturation stall/resume, and the idle fast-forward — including
 * the load-bearing differential property that fast-forward on/off
 * produces bit-identical results.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/simulation.hh"
#include "cpu/smt_core.hh"
#include "trace/builder.hh"
#include "trace/mom_emitter.hh"
#include "trace/scalar_emitter.hh"

namespace momsim::cpu
{
namespace
{

using trace::IVal;
using trace::MomEmitter;
using trace::Program;
using trace::ScalarEmitter;
using trace::SVal;
using trace::TraceBuilder;

constexpr uint32_t kBase = 16u << 20;

uint64_t
runCore(const Program &prog, CoreConfig cfg, mem::MemModel model,
        uint64_t *commits = nullptr, SmtCore **coreOut = nullptr,
        std::unique_ptr<SmtCore> *keep = nullptr,
        std::unique_ptr<mem::MemorySystem> *keepMem = nullptr)
{
    auto mem = mem::makeMemorySystem(model);
    auto core = std::make_unique<SmtCore>(cfg, *mem);
    for (int tid = 0; tid < cfg.numThreads; ++tid)
        core->attachProgram(tid, &prog);
    auto allIdle = [&] {
        for (int tid = 0; tid < cfg.numThreads; ++tid) {
            if (!core->threadIdle(tid))
                return false;
        }
        return true;
    };
    while (!allIdle() && core->now() < 3'000'000)
        core->step();
    EXPECT_LT(core->now(), 3'000'000u) << "core appears hung";
    if (commits)
        *commits = core->committedRecords();
    uint64_t cycles = core->now();
    if (coreOut)
        *coreOut = core.get();
    if (keep) {
        *keep = std::move(core);
        *keepMem = std::move(mem);
    }
    return cycles;
}

// ---------------------------------------------------------------------------
// Readiness machinery
// ---------------------------------------------------------------------------

TEST(KernelReadiness, GraduatedAndRecycledProducersReadImmediatelyReady)
{
    // A producer whose ROB slot has long been recycled by younger
    // instructions (window 16, ~100 fillers in between) must read as
    // ready at the consumer's dispatch — the consumer registers no
    // waiter and issues immediately.
    TraceBuilder tb("recycle", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    IVal r = s.imm(7);
    for (int i = 0; i < 100; ++i)
        s.imm(i);
    IVal c = s.addi(r, 1);      // producer graduated ~90 entries ago
    c = s.addi(c, 1);
    Program p = tb.take();

    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    cfg.windowPerThread = 16;
    uint64_t commits = 0;
    uint64_t withFf = runCore(p, cfg, mem::MemModel::Perfect, &commits);
    EXPECT_EQ(commits, p.size());

    cfg.enableFastForward = false;
    uint64_t withoutFf = runCore(p, cfg, mem::MemModel::Perfect, &commits);
    EXPECT_EQ(commits, p.size());
    EXPECT_EQ(withFf, withoutFf);
}

TEST(KernelReadiness, WakeupsSurviveFlushAndSlotReuse)
{
    // Dependence chains crossing randomly mispredicted branches: every
    // flush rolls the tail back and re-dispatches the same positions
    // with fresh generation tags, so wakeup records from the squashed
    // era must stay inert (a stale record double-decrementing a
    // pending-producer count would issue instructions early and change
    // cycle counts, or wedge the machine). Conventional memory keeps
    // producers in flight long enough for consumers to register.
    TraceBuilder tb("flushwake", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    uint32_t buf = tb.alloc(1 << 16);
    IVal base = s.imm(static_cast<int32_t>(buf));
    IVal acc = s.imm(0);
    uint32_t lfsr = 0xC0DE;
    for (int i = 0; i < 600; ++i) {
        IVal v = s.loadI32(base, (i * 64) % (1 << 16));
        acc = s.add(acc, v);            // consumer of an in-flight load
        s.condBr(acc, (lfsr & 1) != 0); // random: mispredicts + flushes
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
        acc = s.addi(acc, 1);           // re-dispatched after each flush
    }
    Program p = tb.take();

    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    cfg.windowPerThread = 16;           // recycle slots aggressively
    uint64_t commits = 0;
    uint64_t withFf =
        runCore(p, cfg, mem::MemModel::Conventional, &commits);
    EXPECT_EQ(commits, p.size());

    cfg.enableFastForward = false;
    uint64_t withoutFf =
        runCore(p, cfg, mem::MemModel::Conventional, &commits);
    EXPECT_EQ(commits, p.size());
    EXPECT_EQ(withFf, withoutFf);
}

TEST(KernelReadiness, QueueSaturationStallsDispatchThenResumes)
{
    // Chained fp divides serialize on the unpipelined divider while
    // independent fp work floods the 12-entry fp queue: dispatch must
    // hit iqFullStalls, then drain and commit everything.
    TraceBuilder tb("sat", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    trace::FVal d = s.fconst(3.0f);
    for (int i = 0; i < 40; ++i) {
        d = s.fdiv(d, s.fconst(1.01f));
        for (int k = 0; k < 6; ++k)
            s.fconst(static_cast<float>(k));    // independent fp ops
    }
    Program p = tb.take();

    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    std::unique_ptr<SmtCore> core;
    std::unique_ptr<mem::MemorySystem> mem;
    uint64_t commits = 0;
    SmtCore *raw = nullptr;
    runCore(p, cfg, mem::MemModel::Perfect, &commits, &raw, &core, &mem);
    EXPECT_EQ(commits, p.size());
    EXPECT_GT(core->stats().get("iqFullStalls"), 0u)
        << "fp queue never saturated; the stall/resume path went untested";
}

// ---------------------------------------------------------------------------
// Idle fast-forward
// ---------------------------------------------------------------------------

TEST(KernelFastForward, EngagesOnMemoryBoundChains)
{
    // A serial chain of dependent cache-missing loads leaves the core
    // with nothing to do for most of each miss: fast-forward must
    // actually skip cycles (otherwise the throughput claim is hollow).
    TraceBuilder tb("chase", isa::SimdIsa::Mmx, kBase);
    ScalarEmitter s(tb);
    uint32_t buf = tb.alloc(1 << 20);
    IVal base = s.imm(static_cast<int32_t>(buf));
    IVal acc = s.imm(0);
    for (int i = 0; i < 300; ++i)
        acc = s.add(acc, s.loadI32(base, (i * 4096) % (1 << 20)));
    Program p = tb.take();

    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    std::unique_ptr<SmtCore> core;
    std::unique_ptr<mem::MemorySystem> mem;
    uint64_t commits = 0;
    SmtCore *raw = nullptr;
    runCore(p, cfg, mem::MemModel::Conventional, &commits, &raw, &core,
            &mem);
    EXPECT_EQ(commits, p.size());
    EXPECT_GT(core->stats().get("idleCyclesSkipped"), 0u);
}

// ---------------------------------------------------------------------------
// Randomized differential: fast-forward on/off, identical RunResult
// ---------------------------------------------------------------------------

/** A seed-dependent mix of chains, branches, memory and (MOM) streams. */
Program
randomProgram(uint32_t seed, isa::SimdIsa simdIsa)
{
    TraceBuilder tb("rand", simdIsa, kBase);
    ScalarEmitter s(tb);
    std::unique_ptr<MomEmitter> mv;
    uint32_t buf = tb.alloc(1 << 16);
    IVal base = s.imm(static_cast<int32_t>(buf));
    if (simdIsa == isa::SimdIsa::Mom) {
        mv = std::make_unique<MomEmitter>(tb);
        mv->setLen(s.imm(8));
    }
    uint32_t lfsr = seed | 1;
    auto step = [&lfsr]() {
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
        return lfsr;
    };
    IVal acc = s.imm(1);
    trace::FVal f = s.fconst(2.0f);
    for (int i = 0; i < 350; ++i) {
        switch (step() % 8) {
          case 0:
            acc = s.addi(acc, 1);
            break;
          case 1:
            s.imm(i);
            break;
          case 2:
            acc = s.add(acc,
                        s.loadI32(base, static_cast<int>(
                            (step() % 1024) * 4)));
            break;
          case 3:
            s.storeI32(base, static_cast<int>((step() % 512) * 8), acc);
            break;
          case 4:
            s.condBr(acc, (step() & 1) != 0);
            break;
          case 5:
            f = s.fdiv(f, s.fconst(1.5f));
            break;
          case 6:
            if (mv) {
                int slot = static_cast<int>(step() % 64);
                SVal v = mv->loadQ(base, slot * 128, 8);
                mv->storeQ(base, 32768 + slot * 128, 8, v);
            } else {
                acc = s.div(s.imm(1000 + i), acc);
            }
            break;
          case 7:
            acc = s.add(acc, s.imm(static_cast<int>(step() % 97)));
            break;
        }
    }
    return tb.take();
}

struct DiffOutcome
{
    core::RunResult run;
    uint64_t robFullStalls = 0;
    uint64_t iqFullStalls = 0;
    uint64_t regFullStalls = 0;
};

DiffOutcome
runSimulation(const Program &prog, int threads, isa::SimdIsa simdIsa,
              mem::MemModel model, bool fastForward)
{
    std::vector<core::WorkloadProgram> rotation(
        static_cast<size_t>(threads) + 2,
        core::WorkloadProgram{ &prog, prog.mix().eqInsts });
    CoreConfig cfg = CoreConfig::preset(threads, simdIsa);
    cfg.enableFastForward = fastForward;
    core::Simulation sim(cfg, model, rotation);
    DiffOutcome out;
    out.run = sim.run(-1, 3'000'000);
    out.robFullStalls = sim.coreRef().stats().get("robFullStalls");
    out.iqFullStalls = sim.coreRef().stats().get("iqFullStalls");
    out.regFullStalls = sim.coreRef().stats().get("regFullStalls");
    return out;
}

TEST(KernelFastForward, RandomizedDifferentialIsBitIdentical)
{
    for (uint32_t seed : { 0xACE1u, 0xBEEFu, 0x1234u }) {
        for (isa::SimdIsa simdIsa :
             { isa::SimdIsa::Mmx, isa::SimdIsa::Mom }) {
            Program p = randomProgram(seed, simdIsa);
            for (int threads : { 1, 4 }) {
                for (mem::MemModel model :
                     { mem::MemModel::Perfect,
                       mem::MemModel::Conventional }) {
                    SCOPED_TRACE(testing::Message()
                                 << "seed=" << seed << " isa="
                                 << isa::toString(simdIsa) << " threads="
                                 << threads << " mem="
                                 << mem::toString(model));
                    DiffOutcome on =
                        runSimulation(p, threads, simdIsa, model, true);
                    DiffOutcome off =
                        runSimulation(p, threads, simdIsa, model, false);
                    EXPECT_FALSE(on.run.hitCycleLimit);
                    EXPECT_EQ(on.run.cycles, off.run.cycles);
                    EXPECT_EQ(on.run.committedEq, off.run.committedEq);
                    EXPECT_EQ(on.run.ipc, off.run.ipc);
                    EXPECT_EQ(on.run.eipc, off.run.eipc);
                    EXPECT_EQ(on.run.l1HitRate, off.run.l1HitRate);
                    EXPECT_EQ(on.run.icacheHitRate,
                              off.run.icacheHitRate);
                    EXPECT_EQ(on.run.l1AvgLatency, off.run.l1AvgLatency);
                    EXPECT_EQ(on.run.mispredicts, off.run.mispredicts);
                    EXPECT_EQ(on.run.condBranches, off.run.condBranches);
                    EXPECT_EQ(on.run.completions, off.run.completions);
                    EXPECT_EQ(on.run.hitCycleLimit,
                              off.run.hitCycleLimit);
                    // The skipped no-op cycles must replay their
                    // dispatch-stall accounting exactly.
                    EXPECT_EQ(on.robFullStalls, off.robFullStalls);
                    EXPECT_EQ(on.iqFullStalls, off.iqFullStalls);
                    EXPECT_EQ(on.regFullStalls, off.regFullStalls);
                }
            }
        }
    }
}

/** Every deterministic RunResult field (not the self-measurement). */
void
expectSameRun(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedEq, b.committedEq);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.eipc, b.eipc);
    EXPECT_EQ(a.l1HitRate, b.l1HitRate);
    EXPECT_EQ(a.icacheHitRate, b.icacheHitRate);
    EXPECT_EQ(a.l1AvgLatency, b.l1AvgLatency);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.hitCycleLimit, b.hitCycleLimit);
}

TEST(KernelResumable, ChunkedAdvanceIsBitIdenticalToOneRun)
{
    // The foundation of batched sweep execution: slicing a run into
    // begin()/advance(budget)/finish() — at any budget, down to one
    // cycle — must reproduce run()'s RunResult bit for bit.
    for (uint32_t seed : { 0xACE1u, 0x5EEDu }) {
        for (mem::MemModel model :
             { mem::MemModel::Perfect, mem::MemModel::Conventional }) {
            Program p = randomProgram(seed, isa::SimdIsa::Mmx);
            std::vector<core::WorkloadProgram> rotation(
                4, core::WorkloadProgram{ &p, p.mix().eqInsts });
            CoreConfig cfg = CoreConfig::preset(2, isa::SimdIsa::Mmx);
            core::Simulation whole(cfg, model, rotation);
            core::RunResult ref = whole.run(-1, 3'000'000);
            ASSERT_FALSE(ref.hitCycleLimit);

            for (uint64_t budget : { uint64_t(1), uint64_t(777),
                                     uint64_t(32768) }) {
                SCOPED_TRACE(testing::Message()
                             << "seed=" << seed << " mem="
                             << mem::toString(model) << " budget="
                             << budget);
                core::Simulation sliced(cfg, model, rotation);
                sliced.begin(-1, 3'000'000);
                int slices = 0;
                while (!sliced.advance(budget))
                    ++slices;
                EXPECT_TRUE(sliced.done());
                expectSameRun(sliced.finish(), ref);
                if (budget < ref.cycles)
                    EXPECT_GT(slices, 0) << "budget never sliced the run";
            }
        }
    }
}

TEST(KernelLayout, ColumnInvariantsHoldThroughFlushHeavyRuns)
{
    // debugLayoutIssue() cross-checks the structure-of-arrays hot
    // columns against the cold records mid-flight: slot mapping, state
    // vs inst/generation consistency, queue references, per-thread
    // queue counts and waiter generation ranges. Probe it repeatedly
    // through runs with flushes and slot recycling, in both ISAs.
    for (isa::SimdIsa simdIsa : { isa::SimdIsa::Mmx, isa::SimdIsa::Mom }) {
        Program p = randomProgram(0xF1CEu, simdIsa);
        CoreConfig cfg = CoreConfig::preset(2, simdIsa);
        cfg.windowPerThread = 16;       // recycle slots aggressively
        auto mem = mem::makeMemorySystem(mem::MemModel::Conventional);
        SmtCore core(cfg, *mem);
        for (int tid = 0; tid < cfg.numThreads; ++tid)
            core.attachProgram(tid, &p);
        auto allIdle = [&] {
            for (int tid = 0; tid < cfg.numThreads; ++tid) {
                if (!core.threadIdle(tid))
                    return false;
            }
            return true;
        };
        int checks = 0;
        while (!allIdle() && core.now() < 3'000'000) {
            core.step();
            if (core.committedRecords() % 64 == 0) {
                std::string issue = core.debugLayoutIssue();
                ASSERT_TRUE(issue.empty())
                    << isa::toString(simdIsa) << " @" << core.now()
                    << ": " << issue;
                ++checks;
            }
        }
        EXPECT_TRUE(allIdle()) << "core appears hung";
        EXPECT_GT(checks, 0);
        // And at quiescence, when every slot should read Empty.
        std::string finalIssue = core.debugLayoutIssue();
        EXPECT_TRUE(finalIssue.empty()) << finalIssue;
    }
}

TEST(KernelFastForward, EmptyProgramsInTheRotationStillComplete)
{
    // A zero-instruction program is idle without ever committing; the
    // commit-gated idle scan must still detect it (regression: the
    // scan-skip optimization once made such a rotation spin to the
    // cycle limit with completions=0).
    Program work = randomProgram(0x5150u, isa::SimdIsa::Mmx);
    Program empty("empty", isa::SimdIsa::Mmx);
    std::vector<core::WorkloadProgram> rotation {
        { &empty, 0 },
        { &work, work.mix().eqInsts },
        { &empty, 0 },
        { &work, work.mix().eqInsts },
    };
    CoreConfig cfg = CoreConfig::preset(2, isa::SimdIsa::Mmx);
    core::Simulation sim(cfg, mem::MemModel::Perfect, rotation);
    core::RunResult run = sim.run(-1, 3'000'000);
    EXPECT_FALSE(run.hitCycleLimit);
    EXPECT_EQ(run.completions, 4);
}

TEST(KernelFastForward, CycleLimitIsExactUnderFastForward)
{
    // A capped run must stop at exactly the configured cycle, not
    // overshoot it by a fast-forward jump.
    Program p = randomProgram(0x7777u, isa::SimdIsa::Mmx);
    std::vector<core::WorkloadProgram> rotation(
        8, core::WorkloadProgram{ &p, p.mix().eqInsts });
    CoreConfig cfg = CoreConfig::preset(1, isa::SimdIsa::Mmx);
    core::Simulation sim(cfg, mem::MemModel::Conventional, rotation);
    core::RunResult run = sim.run(-1, 500);
    EXPECT_TRUE(run.hitCycleLimit);
    EXPECT_EQ(run.cycles, 500u);
}

} // namespace
} // namespace momsim::cpu
