// momlint fixture: MUST be clean for float-format.
// The canonical %.17g round-trips every double; prose in comments
// (like "CSV uses %.2f") must not trip the rule either.
#include <cstdio>

void
emitRow(char *buf, unsigned long n, double ipc, double wallMs)
{
    std::snprintf(buf, n, "\"ipc\":%.17g", ipc);
    std::snprintf(buf, n, "\"count\":%d", 3);       // ints are fine
    // momlint: allow(float-format) timing field pinned by the protocol
    std::snprintf(buf, n, "\"wallMs\":%.3f", wallMs);
}
