// momlint fixture: MUST be clean for nondet-source.
// Entropy derives from the point seed (SplitMix64 here), so the same
// request always simulates the same bytes. Mentioning rand() or a
// steady_clock in a comment must not trip the rule.
#include <cstdint>

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
wallSample(uint64_t seed)
{
    // momlint: allow(nondet-source) fixture demonstrating a reasoned
    // waiver for a reporting-only wall-clock read
    return static_cast<double>(splitmix64(seed) >> 40) *
           (1.0 / (1 << 24)) * static_cast<double>(sizeof(long));
}
