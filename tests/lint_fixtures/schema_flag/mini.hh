// momlint fixture (schema-lock MUST flag): the serializer in mini.cc
// grew a "c" field, but the version constant was not bumped and the
// lock still records the two-field schema.
constexpr int kMiniSchemaVersion = 1;
