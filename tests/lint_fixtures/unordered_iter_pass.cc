// momlint fixture: MUST be clean for unordered-iter.
// The deterministic idioms: key lookups are fine, and emission walks a
// sorted key list instead of the map itself.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

std::string
emitAll(const std::unordered_map<std::string, int> &rows,
        const std::vector<std::string> &orderedKeys)
{
    std::string out;
    for (const std::string &key : orderedKeys) {
        auto it = rows.find(key);           // lookup, not iteration
        if (it != rows.end())
            out += it->first;
    }
    // momlint: allow(unordered-iter) keys are copied out and sorted
    // before anything is emitted, so hash order never reaches a byte
    for (const auto &kv : rows)
        out += kv.first[0];
    return out;
}
