// momlint fixture: MUST produce nondet-source findings.
// Ambient entropy in the simulator core makes results depend on when
// and where they ran instead of on the request alone.
#include <chrono>
#include <cstdlib>
#include <random>

unsigned long
pickLatency()
{
    std::random_device rd;                              // flagged
    unsigned seed = rd() ^ static_cast<unsigned>(
        std::chrono::steady_clock::now()                // flagged
            .time_since_epoch().count());
    std::srand(seed);                                   // flagged
    return static_cast<unsigned long>(std::rand());     // flagged
}
