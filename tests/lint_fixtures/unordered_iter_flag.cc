// momlint fixture: MUST produce unordered-iter findings.
// A serializer walking a hash map emits bytes in hash order — the
// exact bug class the rule exists to catch.
#include <string>
#include <unordered_map>

std::string
emitAll(const std::unordered_map<std::string, int> &rows)
{
    std::string out;
    for (const auto &kv : rows)             // flagged: range-for
        out += kv.first;
    auto first = rows.begin();              // flagged: .begin()
    if (first != rows.end())
        out += first->first;
    return out;
}
