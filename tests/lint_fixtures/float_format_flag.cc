// momlint fixture: MUST produce float-format findings.
// %.6f quantizes: a stored row re-rendered through it is no longer
// byte-identical to the run that produced it.
#include <cstdio>

void
emitRow(char *buf, unsigned long n, double ipc)
{
    std::snprintf(buf, n, "\"ipc\":%.6f", ipc);     // flagged
    std::snprintf(buf, n, "\"eipc\":%g", ipc);      // flagged
}
