// momlint fixture (schema-lock MUST pass): the lock matches the
// serializer's field list and version exactly.
constexpr int kMiniSchemaVersion = 2;
