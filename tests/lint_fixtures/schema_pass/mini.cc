#include <string>

std::string
serialize(int a, int b, int c)
{
    return "{\"a\":" + std::to_string(a) + ",\"b\":" + std::to_string(b) +
           ",\"c\":" + std::to_string(c) + "}";
}
