/**
 * @file
 * Tests for the workload-spec registry and the WorkloadRepo cache: name
 * resolution (fixed mixes and the paperxN pattern), recipe-driven
 * builds (paper-mix parity, duplicate-slot rebasing, decoder-only mixes
 * synthesizing their bitstreams), per-spec fingerprint distinctness,
 * and the repo's build-once sharing across lookups and pool workers.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "driver/thread_pool.hh"
#include "workloads/workload_repo.hh"

namespace momsim::workloads
{
namespace
{

using isa::SimdIsa;

// ---------------------------------------------------------------------------
// WorkloadSpec registry
// ---------------------------------------------------------------------------

TEST(WorkloadSpec, RegistryHoldsTheDocumentedMixes)
{
    std::set<std::string> names;
    for (const WorkloadSpec &spec : WorkloadSpec::registry()) {
        EXPECT_FALSE(spec.slots.empty()) << spec.name;
        EXPECT_FALSE(spec.description.empty()) << spec.name;
        names.insert(spec.name);
    }
    for (const char *expected : { "paper", "decode-heavy", "encode-heavy",
                                  "mpeg2x8", "gsmx8", "jpegx8" })
        EXPECT_EQ(names.count(expected), 1u) << expected;
}

TEST(WorkloadSpec, PaperMixIsTheSection51Rotation)
{
    WorkloadSpec spec = WorkloadSpec::paper();
    ASSERT_EQ(spec.slots.size(), 8u);
    const ProgramKind expected[8] = {
        ProgramKind::Mpeg2Enc, ProgramKind::GsmDec, ProgramKind::Mpeg2Dec,
        ProgramKind::GsmEnc, ProgramKind::JpegDec, ProgramKind::JpegEnc,
        ProgramKind::Mesa, ProgramKind::Mpeg2Dec,
    };
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(spec.slots[i], expected[i]) << "slot " << i;
}

TEST(WorkloadSpec, ByNameResolvesFixedAndScaledNames)
{
    WorkloadSpec spec;
    ASSERT_TRUE(WorkloadSpec::byName("decode-heavy", spec));
    EXPECT_EQ(spec.name, "decode-heavy");
    EXPECT_EQ(spec.slots.size(), 8u);

    ASSERT_TRUE(WorkloadSpec::byName("paperx3", spec));
    EXPECT_EQ(spec.slots.size(), 24u);
    // Each repetition preserves the rotation order.
    for (size_t i = 0; i < spec.slots.size(); ++i)
        EXPECT_EQ(spec.slots[i], WorkloadSpec::paper().slots[i % 8]);

    EXPECT_FALSE(WorkloadSpec::isKnown("paperx1"));
    EXPECT_FALSE(WorkloadSpec::isKnown("paperx9"));
    EXPECT_FALSE(WorkloadSpec::isKnown("paperx"));
    EXPECT_FALSE(WorkloadSpec::isKnown("paperx2b"));
    EXPECT_FALSE(WorkloadSpec::isKnown("paperx+3"));
    EXPECT_FALSE(WorkloadSpec::isKnown("paperx03"));
    EXPECT_FALSE(WorkloadSpec::isKnown("nonsense"));
    EXPECT_TRUE(WorkloadSpec::isKnown("paperx8"));
}

// ---------------------------------------------------------------------------
// Recipe-driven builds
// ---------------------------------------------------------------------------

WorkloadSpec
tinySpec(const std::string &name)
{
    WorkloadSpec spec;
    EXPECT_TRUE(WorkloadSpec::byName(name, spec)) << name;
    spec.scale = WorkloadScale::Tiny;
    return spec;
}

TEST(MediaWorkloadBuild, PaperRecipeMatchesTheHistoricalLayout)
{
    auto wl = MediaWorkload::build(tinySpec("paper"));
    ASSERT_EQ(wl->numPrograms(), MediaWorkload::kNumPrograms);
    EXPECT_EQ(wl->specName(), "paper");
    const char *names[8] = { "mpeg2enc", "gsmdec", "mpeg2dec", "gsmenc",
                             "jpegdec", "jpegenc", "mesa", "mpeg2dec2" };
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(wl->name(i), names[i]) << "slot " << i;

    // The scale-only overload is the paper spec by definition.
    auto legacy = MediaWorkload::build(WorkloadScale::Tiny);
    EXPECT_EQ(legacy->fingerprint(), wl->fingerprint());
    EXPECT_EQ(legacy->specName(), "paper");

    // The duplicate decoder is the first instance rebased: identical
    // trace length, distinct name and address space.
    const trace::Program &first = wl->program(SimdIsa::Mmx, 2);
    const trace::Program &second = wl->program(SimdIsa::Mmx, 7);
    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(second.name(), "mpeg2dec2");
    EXPECT_NE(first.insts()[0].pc, second.insts()[0].pc);
    EXPECT_EQ(wl->eqInsts(SimdIsa::Mmx, 2), wl->eqInsts(SimdIsa::Mmx, 7));
}

TEST(MediaWorkloadBuild, DecoderOnlyMixSynthesizesItsBitstreams)
{
    // decode-heavy has no encoders: every decoder must still get a
    // valid stream (from throwaway scratch builds) and nonempty traces.
    auto wl = MediaWorkload::build(tinySpec("decode-heavy"));
    ASSERT_EQ(wl->numPrograms(), 8);
    int decoders = 0;
    for (int i = 0; i < wl->numPrograms(); ++i) {
        EXPECT_FALSE(wl->program(SimdIsa::Mmx, i).empty()) << i;
        EXPECT_FALSE(wl->program(SimdIsa::Mom, i).empty()) << i;
        ProgramKind kind = wl->kind(i);
        decoders += kind == ProgramKind::Mpeg2Dec ||
                    kind == ProgramKind::GsmDec ||
                    kind == ProgramKind::JpegDec;
    }
    EXPECT_EQ(decoders, 7);
    // Ordinal naming handles three copies.
    EXPECT_EQ(wl->name(0), "mpeg2dec");
    EXPECT_EQ(wl->name(3), "mpeg2dec2");
    EXPECT_EQ(wl->name(7), "mpeg2dec3");
}

TEST(MediaWorkloadBuild, ScaledMixRepeatsThePaperRotation)
{
    auto paper = MediaWorkload::build(tinySpec("paper"));
    auto x2 = MediaWorkload::build(tinySpec("paperx2"));
    ASSERT_EQ(x2->numPrograms(), 16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(x2->kind(i), paper->kind(i % 8)) << i;
    // Same per-slot work, twice — and a distinct fingerprint.
    EXPECT_EQ(x2->eqInsts(SimdIsa::Mmx, 8),
              paper->eqInsts(SimdIsa::Mmx, 0));
    EXPECT_NE(x2->fingerprint(), paper->fingerprint());
    EXPECT_EQ(x2->rotation(SimdIsa::Mom).size(), 16u);
}

TEST(MediaWorkloadBuild, DistinctMixesHaveDistinctFingerprints)
{
    std::set<uint64_t> fingerprints;
    for (const char *name : { "paper", "decode-heavy", "encode-heavy",
                              "gsmx8", "jpegx8" }) {
        auto wl = MediaWorkload::build(tinySpec(name));
        EXPECT_NE(wl->fingerprint(), 0u) << name;
        EXPECT_TRUE(fingerprints.insert(wl->fingerprint()).second)
            << name << " collides";
    }
}

// ---------------------------------------------------------------------------
// WorkloadRepo caching
// ---------------------------------------------------------------------------

TEST(WorkloadRepo, BuildsOnceAndSharesThereafter)
{
    WorkloadRepo repo(WorkloadScale::Tiny);
    EXPECT_EQ(repo.size(), 0u);
    ASSERT_EQ(repo.missing({ "gsmx8", "gsmx8", "paper" }).size(), 2u);

    auto first = repo.get("gsmx8");
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(repo.size(), 1u);
    // Same object, not a rebuild.
    EXPECT_EQ(repo.get("gsmx8").get(), first.get());
    EXPECT_EQ(repo.size(), 1u);
    EXPECT_EQ(repo.fingerprintOf("gsmx8"), first->fingerprint());
    EXPECT_TRUE(repo.missing({ "gsmx8" }).empty());
    ASSERT_EQ(repo.missing({ "gsmx8", "jpegx8" }).size(), 1u);
    EXPECT_EQ(repo.missing({ "gsmx8", "jpegx8" })[0], "jpegx8");
}

TEST(WorkloadRepo, DistinctSpecsBuildConcurrentlyOnThePool)
{
    WorkloadRepo repo(WorkloadScale::Tiny);
    std::vector<std::string> names { "gsmx8", "jpegx8" };
    driver::ThreadPool pool(2);
    pool.parallelFor(names.size(),
                     [&](size_t i) { repo.get(names[i]); });
    EXPECT_EQ(repo.size(), 2u);
    EXPECT_NE(repo.fingerprintOf("gsmx8"), repo.fingerprintOf("jpegx8"));
}

} // namespace
} // namespace momsim::workloads
