# The CLI-redesign acceptance gate: `momsim <SUBCMD> --quick` stdout
# must be byte-identical to the standalone bench binary the subcommand
# replaced. The golden files under tests/golden/cli/ were captured from
# those binaries at their final commit (bench_<name> --quick > golden),
# so this gate is both the smoke test (the bench still runs end to end)
# and the regression fence (the multi-tool path reproduces the old
# binaries exactly, and future changes that move any figure's output
# fail here).
#
# Usage: cmake -DMOMSIM=<path> -DSUBCMD=<name> -DGOLDEN=<file>
#              -DWORKDIR=<dir> -P CliEquivalence.cmake

foreach(var MOMSIM SUBCMD GOLDEN)
  if(NOT ${var})
    message(FATAL_ERROR "${var} not set")
  endif()
endforeach()
if(NOT WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORKDIR}/cli_equivalence)
file(MAKE_DIRECTORY ${dir})

execute_process(
  COMMAND ${MOMSIM} ${SUBCMD} --quick
  OUTPUT_FILE ${dir}/${SUBCMD}.out
  ERROR_FILE ${dir}/${SUBCMD}.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "momsim ${SUBCMD} --quick exited with ${rc} "
                      "(see ${dir}/${SUBCMD}.err)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${dir}/${SUBCMD}.out ${GOLDEN}
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "cli_equivalence: `momsim ${SUBCMD} --quick` stdout differs "
          "from the removed bench binary's golden "
          "(${dir}/${SUBCMD}.out vs ${GOLDEN})")
endif()
message(STATUS
        "cli_equivalence: momsim ${SUBCMD} reproduces the old binary "
        "byte for byte")
