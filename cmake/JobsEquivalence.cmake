# Runs a bench twice — --jobs 1 and --jobs 4 — and fails unless the two
# stdouts are byte-identical. This is the determinism acceptance gate
# for the threaded experiment runner.
#
# BENCH is an executable; the optional SUBCMD is the momsim subcommand
# to run (empty for a standalone binary).
#
# Usage: cmake -DBENCH=<path> [-DSUBCMD=<name>] -DWORKDIR=<dir>
#              -P JobsEquivalence.cmake

if(NOT BENCH)
  message(FATAL_ERROR "BENCH not set")
endif()
if(NOT WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

if(SUBCMD)
  set(stem ${SUBCMD})
else()
  get_filename_component(stem ${BENCH} NAME_WE)
endif()
set(out1 ${WORKDIR}/${stem}.jobs1.out)
set(outN ${WORKDIR}/${stem}.jobsN.out)

execute_process(
  COMMAND ${BENCH} ${SUBCMD} --quick --jobs 1
  OUTPUT_FILE ${out1}
  RESULT_VARIABLE rc1
)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "${BENCH} ${SUBCMD} --quick --jobs 1 exited with ${rc1}")
endif()

execute_process(
  COMMAND ${BENCH} ${SUBCMD} --quick --jobs 4
  OUTPUT_FILE ${outN}
  RESULT_VARIABLE rcN
)
if(NOT rcN EQUAL 0)
  message(FATAL_ERROR "${BENCH} ${SUBCMD} --quick --jobs 4 exited with ${rcN}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${out1} ${outN}
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "${stem}: stdout differs between --jobs 1 and --jobs 4 "
          "(${out1} vs ${outN})")
endif()
message(STATUS "${stem}: --jobs 1 and --jobs 4 outputs are identical")
