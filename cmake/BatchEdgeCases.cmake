# Edge-case acceptance gate for the `momsim batch` input framing and
# scheduling paths the happy-path gate never exercises:
#
#  (a) a final request line WITHOUT a trailing newline is still served
#      (the reader pushes the last partial line at EOF);
#  (b) blank lines are skipped, not answered — response count equals
#      request count, not line count;
#  (c) a stream much deeper than the admission queue (backpressure:
#      ~40 requests against --parallel 1's small bound) completes with
#      every response present, in input order;
#  (d) --parallel far above the request count is harmless;
#  (e) all of the above are byte-identical across two runs.
#
# Usage: cmake -DMOMSIM=<path> -DWORKDIR=<dir> -P BatchEdgeCases.cmake

if(NOT MOMSIM)
  message(FATAL_ERROR "MOMSIM not set")
endif()
if(NOT WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORKDIR}/batch_edge_cases)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

# ---- (a)+(b): blank lines between requests, no newline after the last
set(req1 "{\"schemaVersion\":1,\"id\":\"first\",\"isas\":[\"mmx\"],\"threads\":[1],\"memModels\":[\"perfect\"],\"quick\":true,\"maxCycles\":100000}")
set(req2 "{\"schemaVersion\":1,\"id\":\"last-no-newline\",\"isas\":[\"mom\"],\"threads\":[1],\"memModels\":[\"perfect\"],\"quick\":true,\"maxCycles\":100000}")
# No trailing newline after req2, blank lines around req1.
file(WRITE ${dir}/framing.jsonl "\n${req1}\n\n\n${req2}")

foreach(run 1 2)
  execute_process(
    COMMAND ${MOMSIM} batch --parallel 2 --no-timing
    INPUT_FILE ${dir}/framing.jsonl
    OUTPUT_FILE ${dir}/framing${run}.out
    ERROR_FILE ${dir}/framing${run}.err
    RESULT_VARIABLE rc
  )
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "batch framing run ${run} exited with ${rc} "
                        "(see ${dir}/framing${run}.err)")
  endif()
endforeach()

file(STRINGS ${dir}/framing1.out lines)
list(LENGTH lines count)
if(NOT count EQUAL 2)
  message(FATAL_ERROR
          "batch framing: expected 2 responses (blank lines skipped, "
          "unterminated final line served), got ${count} "
          "(see ${dir}/framing1.out)")
endif()
list(GET lines 0 line0)
list(GET lines 1 line1)
if(NOT line0 MATCHES "\"id\":\"first\"" OR NOT line0 MATCHES "\"ok\":true")
  message(FATAL_ERROR "batch framing: response 0 wrong: ${line0}")
endif()
if(NOT line1 MATCHES "\"id\":\"last-no-newline\"" OR
   NOT line1 MATCHES "\"ok\":true")
  message(FATAL_ERROR
          "batch framing: unterminated final request not served: "
          "${line1}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${dir}/framing1.out ${dir}/framing2.out
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "batch framing: two runs differ")
endif()

# ---- (c): stream deeper than the --parallel 1 admission queue ----
set(stream "")
set(n 40)
math(EXPR last "${n} - 1")
foreach(i RANGE ${last})
  string(APPEND stream "{\"schemaVersion\":1,\"id\":\"bp-${i}\",\"isas\":[\"mmx\"],\"threads\":[1],\"memModels\":[\"perfect\"],\"quick\":true,\"maxCycles\":20000}\n")
endforeach()
file(WRITE ${dir}/deep.jsonl "${stream}")

execute_process(
  COMMAND ${MOMSIM} batch --parallel 1 --no-timing
  INPUT_FILE ${dir}/deep.jsonl
  OUTPUT_FILE ${dir}/deep.out
  ERROR_FILE ${dir}/deep.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "batch backpressure run exited with ${rc} "
                      "(see ${dir}/deep.err)")
endif()
file(STRINGS ${dir}/deep.out deep_lines)
list(LENGTH deep_lines deep_count)
if(NOT deep_count EQUAL ${n})
  message(FATAL_ERROR
          "batch backpressure: expected ${n} responses, got "
          "${deep_count} (see ${dir}/deep.out)")
endif()
set(i 0)
foreach(line IN LISTS deep_lines)
  if(NOT line MATCHES "\"id\":\"bp-${i}\"")
    message(FATAL_ERROR
            "batch backpressure: response ${i} out of order: ${line}")
  endif()
  math(EXPR i "${i} + 1")
endforeach()

# ---- (d): --parallel 16 against a 2-request stream ----
file(WRITE ${dir}/wide.jsonl "${req1}\n${req2}\n")
execute_process(
  COMMAND ${MOMSIM} batch --parallel 16 --no-timing
  INPUT_FILE ${dir}/wide.jsonl
  OUTPUT_FILE ${dir}/wide.out
  ERROR_FILE ${dir}/wide.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "batch wide run exited with ${rc} "
                      "(see ${dir}/wide.err)")
endif()
# Same two requests as the framing stream => byte-identical responses.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${dir}/wide.out ${dir}/framing1.out
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "batch: --parallel 16 responses differ from --parallel 2 "
          "(${dir}/wide.out vs ${dir}/framing1.out)")
endif()

message(STATUS
        "batch_edge_cases: unterminated final line, blank-line "
        "skipping, 40-deep backpressure in order, parallel > requests")
