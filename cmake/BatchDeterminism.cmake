# The batch-mode acceptance gate for `momsim batch`, the JSONL
# traffic-serving entry point:
#
#  (a) a stream of requests — two sweeps plus two malformed/invalid
#      ones — executed with 4 concurrent submitter threads produces one
#      response line per request, each tagged with the request's id, in
#      input order;
#  (b) running the identical stream twice under --no-timing is
#      byte-identical (responses depend on requests, never on submitter
#      interleaving);
#  (c) error requests come back as structured ok:false responses in
#      their slot instead of killing the stream.
#
# Usage: cmake -DMOMSIM=<path> -DWORKDIR=<dir> -P BatchDeterminism.cmake

if(NOT MOMSIM)
  message(FATAL_ERROR "MOMSIM not set")
endif()
if(NOT WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORKDIR}/batch_determinism)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

# Small sweeps (quick scale, capped cycles) so the gate runs in
# seconds: one by bench name, one by explicit axes, one unknown-
# workload error, one malformed JSON line.
file(WRITE ${dir}/requests.jsonl
"{\"schemaVersion\":1,\"id\":\"req-axes\",\"isas\":[\"mmx\",\"mom\"],\"threads\":[1,2],\"memModels\":[\"perfect\"],\"quick\":true,\"maxCycles\":200000}
{\"schemaVersion\":1,\"id\":\"req-fig6\",\"bench\":\"fig6\",\"quick\":true,\"maxCycles\":200000}
{\"schemaVersion\":1,\"id\":\"req-bad-workload\",\"workloads\":[\"nonsense\"],\"quick\":true}
this is not json
")

foreach(run 1 2)
  execute_process(
    COMMAND ${MOMSIM} batch --parallel 4 --no-timing
    INPUT_FILE ${dir}/requests.jsonl
    OUTPUT_FILE ${dir}/run${run}.out
    ERROR_FILE ${dir}/run${run}.err
    RESULT_VARIABLE rc
  )
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "momsim batch (run ${run}) exited with ${rc} "
                        "(see ${dir}/run${run}.err)")
  endif()
endforeach()

# (a) one response per request, in input order, tagged with the ids.
file(STRINGS ${dir}/run1.out lines)
list(LENGTH lines count)
if(NOT count EQUAL 4)
  message(FATAL_ERROR
          "batch: expected 4 response lines, got ${count} "
          "(see ${dir}/run1.out)")
endif()
list(GET lines 0 line0)
list(GET lines 1 line1)
list(GET lines 2 line2)
list(GET lines 3 line3)
if(NOT line0 MATCHES "\"id\":\"req-axes\"" OR
   NOT line0 MATCHES "\"ok\":true")
  message(FATAL_ERROR "batch: response 0 is not req-axes ok: ${line0}")
endif()
if(NOT line1 MATCHES "\"id\":\"req-fig6\"" OR
   NOT line1 MATCHES "\"ok\":true" OR
   NOT line1 MATCHES "\"bench\":\"fig6\"")
  message(FATAL_ERROR "batch: response 1 is not req-fig6 ok: ${line1}")
endif()

# (c) the structured error paths that used to exit().
if(NOT line2 MATCHES "\"id\":\"req-bad-workload\"" OR
   NOT line2 MATCHES "\"ok\":false" OR
   NOT line2 MATCHES "\"code\":\"unknown_workload\"")
  message(FATAL_ERROR
          "batch: response 2 is not a structured unknown_workload "
          "error: ${line2}")
endif()
if(NOT line3 MATCHES "\"ok\":false" OR
   NOT line3 MATCHES "\"code\":\"bad_request\"")
  message(FATAL_ERROR
          "batch: response 3 is not a structured bad_request error: "
          "${line3}")
endif()

# (b) byte-identical across runs.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${dir}/run1.out ${dir}/run2.out
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "batch: two runs of the same request stream differ "
          "(${dir}/run1.out vs ${dir}/run2.out)")
endif()

message(STATUS
        "batch_determinism: 4 concurrent requests, in-order tagged "
        "responses, structured errors, byte-identical re-run")
