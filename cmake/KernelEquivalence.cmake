# The kernel-refactor acceptance gate: the refactored simulation kernel
# must reproduce the pre-refactor rows byte-identically. The golden
# files under tests/golden/ were produced by the pre-refactor binary
# (PR 3 head):
#
#   fig6_quick.csv      bench_fig6_fetch_policies --quick --csv  (v3 CSV)
#   table2_quick.stdout bench_table2_workload --quick            (stdout)
#
# The current CSV carries two extra schema-v4 tail columns
# (sim_kcps, wall_ms — nondeterministic self-measurement); they are
# stripped before comparing, which is why they must stay the last two
# columns.
#
# Usage: cmake -DMOMSIM=<path> -DGOLDEN=<dir> -DWORKDIR=<dir>
#              -P KernelEquivalence.cmake

foreach(var MOMSIM GOLDEN)
  if(NOT ${var})
    message(FATAL_ERROR "${var} not set")
  endif()
endforeach()
if(NOT WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(FIG6 ${MOMSIM} fig6)
set(TABLE2 ${MOMSIM} table2)

set(dir ${WORKDIR}/kernel_equivalence)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

# --- fig6: CSV rows (exact doubles) modulo the two new tail columns ---
execute_process(
  COMMAND ${FIG6} --quick --csv ${dir}/fig6.csv
  OUTPUT_FILE ${dir}/fig6.out
  ERROR_FILE ${dir}/fig6.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${FIG6} --quick exited with ${rc}")
endif()

file(READ ${dir}/fig6.csv csv)
# Drop the final two comma-separated fields of every line (they cannot
# contain commas or newlines, so the leftmost match is exactly the tail).
string(REGEX REPLACE ",[^,\n]*,[^,\n]*\n" "\n" stripped "${csv}")
file(WRITE ${dir}/fig6.stripped.csv "${stripped}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${dir}/fig6.stripped.csv ${GOLDEN}/fig6_quick.csv
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "kernel_equivalence: fig6 --quick rows differ from the "
          "pre-refactor kernel (${dir}/fig6.stripped.csv vs "
          "${GOLDEN}/fig6_quick.csv) — the refactor changed simulation "
          "results")
endif()

# --- table2: stdout byte-for-byte ---
execute_process(
  COMMAND ${TABLE2} --quick
  OUTPUT_FILE ${dir}/table2.out
  ERROR_FILE ${dir}/table2.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${TABLE2} --quick exited with ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${dir}/table2.out ${GOLDEN}/table2_quick.stdout
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "kernel_equivalence: table2 --quick stdout differs from the "
          "pre-refactor output (${dir}/table2.out vs "
          "${GOLDEN}/table2_quick.stdout)")
endif()

message(STATUS
        "kernel_equivalence: fig6 + table2 --quick reproduce the "
        "pre-refactor kernel byte for byte")
