# Runs a bench three ways — unsharded, as 3 shard processes each with
# its own --cache-dir store, then a --merge run over the three stores —
# and fails unless the merged stdout is byte-identical to the unsharded
# one AND the merge run simulated nothing (i.e. every point really was
# served from the per-shard stores, not silently re-run).
#
# BENCH is an executable; the optional SUBCMD is the momsim subcommand
# to run (empty for a standalone binary).
#
# Usage: cmake -DBENCH=<path> [-DSUBCMD=<name>] -DWORKDIR=<dir>
#              -P ShardEquivalence.cmake

if(NOT BENCH)
  message(FATAL_ERROR "BENCH not set")
endif()
if(NOT WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

if(SUBCMD)
  set(stem ${SUBCMD})
else()
  get_filename_component(stem ${BENCH} NAME_WE)
endif()
set(dir ${WORKDIR}/${stem}.shard_equiv)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

execute_process(
  COMMAND ${BENCH} ${SUBCMD} --quick
  OUTPUT_FILE ${dir}/ref.out
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} ${SUBCMD} --quick (reference) exited with ${rc}")
endif()

set(stores "")
foreach(i RANGE 1 3)
  execute_process(
    COMMAND ${BENCH} ${SUBCMD} --quick --shard ${i}/3
            --cache-dir ${dir}/shard${i}
    OUTPUT_FILE ${dir}/shard${i}.out
    RESULT_VARIABLE rc
  )
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} ${SUBCMD} --shard ${i}/3 exited with ${rc}")
  endif()
  list(APPEND stores ${dir}/shard${i}/results.jsonl)
endforeach()

list(JOIN stores "," merged_arg)
execute_process(
  COMMAND ${BENCH} ${SUBCMD} --quick --merge ${merged_arg}
  OUTPUT_FILE ${dir}/merged.out
  ERROR_FILE ${dir}/merged.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} ${SUBCMD} --merge exited with ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${dir}/ref.out ${dir}/merged.out
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "${stem}: merged stdout differs from the unsharded run "
          "(${dir}/ref.out vs ${dir}/merged.out)")
endif()

file(READ ${dir}/merged.err errtext)
string(FIND "${errtext}" " simulated=0 " pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
          "${stem}: the merge run re-simulated points instead of "
          "replaying the shard stores (see ${dir}/merged.err)")
endif()
message(STATUS
        "${stem}: 3-shard merge is byte-identical to the unsharded run "
        "and simulated nothing")
