# Runs a bench twice with the same --cache-dir and fails unless the
# second (warm) run reports zero simulated points while producing stdout
# byte-identical to the first (cold) run. Also asserts the cold run did
# simulate, so a broken always-hit cache cannot pass vacuously.
#
# BENCH is an executable; the optional SUBCMD is the momsim subcommand
# to run (empty for a standalone binary).
#
# Usage: cmake -DBENCH=<path> [-DSUBCMD=<name>] -DWORKDIR=<dir>
#              -P CacheWarm.cmake

if(NOT BENCH)
  message(FATAL_ERROR "BENCH not set")
endif()
if(NOT WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

if(SUBCMD)
  set(stem ${SUBCMD})
else()
  get_filename_component(stem ${BENCH} NAME_WE)
endif()
set(dir ${WORKDIR}/${stem}.cache_warm)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

execute_process(
  COMMAND ${BENCH} ${SUBCMD} --quick --cache-dir ${dir}/store
  OUTPUT_FILE ${dir}/cold.out
  ERROR_FILE ${dir}/cold.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} ${SUBCMD} cold run exited with ${rc}")
endif()

execute_process(
  COMMAND ${BENCH} ${SUBCMD} --quick --cache-dir ${dir}/store
  OUTPUT_FILE ${dir}/warm.out
  ERROR_FILE ${dir}/warm.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} ${SUBCMD} warm run exited with ${rc}")
endif()

file(READ ${dir}/cold.err cold_err)
string(FIND "${cold_err}" " simulated=0 " cold_pos)
if(NOT cold_pos EQUAL -1)
  message(FATAL_ERROR
          "${stem}: the cold run claims it simulated nothing — the "
          "cache hit on an empty store (see ${dir}/cold.err)")
endif()

file(READ ${dir}/warm.err warm_err)
string(FIND "${warm_err}" " simulated=0 " warm_pos)
if(warm_pos EQUAL -1)
  message(FATAL_ERROR
          "${stem}: the warm run re-simulated points (see "
          "${dir}/warm.err)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${dir}/cold.out ${dir}/warm.out
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "${stem}: warm-cache stdout differs from the cold run "
          "(${dir}/cold.out vs ${dir}/warm.out)")
endif()
message(STATUS
        "${stem}: warm-cache re-run simulated 0 points with "
        "byte-identical stdout")
