# The workload-axis acceptance gate, in three parts:
#
#  (a) two workload specs in one grid produce per-workload-distinct
#      fingerprints in the plan and per-workload rows in the CSV;
#  (b) a warm --cache-dir re-run of the multi-workload sweep simulates
#      zero points and reproduces the cold run's stdout byte for byte;
#  (c) `--workload paper` is byte-identical to the flagless default
#      (the pre-redesign behaviour) for fig6.
#
# Usage: cmake -DMOMSIM=<path> -DWORKDIR=<dir> -P WorkloadAxis.cmake

if(NOT MOMSIM)
  message(FATAL_ERROR "MOMSIM must be set")
endif()
if(NOT WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(MIXBENCH ${MOMSIM} workload_mix)
set(FIG6 ${MOMSIM} fig6)

set(dir ${WORKDIR}/workload_axis)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

set(mixargs --quick --jobs 2 --workload paper,gsmx8)

# ---- (a) distinct fingerprints in the plan --------------------------------
execute_process(
  COMMAND ${MIXBENCH} ${mixargs} --dry-run
  OUTPUT_FILE ${dir}/plan.out
  ERROR_FILE ${dir}/plan.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dry-run exited with ${rc}")
endif()
file(READ ${dir}/plan.out plan)
string(REGEX MATCH "workload paper: fingerprint=([0-9a-f]+)" _ "${plan}")
set(fp_paper ${CMAKE_MATCH_1})
string(REGEX MATCH "workload gsmx8: fingerprint=([0-9a-f]+)" _ "${plan}")
set(fp_gsm ${CMAKE_MATCH_1})
if(NOT fp_paper OR NOT fp_gsm)
  message(FATAL_ERROR
          "plan is missing per-workload fingerprints (see ${dir}/plan.out)")
endif()
if(fp_paper STREQUAL fp_gsm)
  message(FATAL_ERROR
          "paper and gsmx8 report the same fingerprint ${fp_paper}")
endif()

# ---- (b) cold run, then a byte-identical zero-simulation warm run ---------
execute_process(
  COMMAND ${MIXBENCH} ${mixargs} --cache-dir ${dir}/store
          --csv ${dir}/cold.csv
  OUTPUT_FILE ${dir}/cold.out
  ERROR_FILE ${dir}/cold.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold run exited with ${rc}")
endif()
file(READ ${dir}/cold.err cold_err)
string(FIND "${cold_err}" " simulated=0 " cold_pos)
if(NOT cold_pos EQUAL -1)
  message(FATAL_ERROR
          "the cold run claims it simulated nothing — the cache hit on "
          "an empty store (see ${dir}/cold.err)")
endif()

# Per-workload rows: ids are workload-prefixed in the CSV.
file(READ ${dir}/cold.csv csv)
foreach(prefix "\npaper/" "\ngsmx8/")
  string(FIND "${csv}" "${prefix}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "CSV has no rows for workload '${prefix}' (see ${dir}/cold.csv)")
  endif()
endforeach()

execute_process(
  COMMAND ${MIXBENCH} ${mixargs} --cache-dir ${dir}/store
          --csv ${dir}/warm.csv
  OUTPUT_FILE ${dir}/warm.out
  ERROR_FILE ${dir}/warm.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm run exited with ${rc}")
endif()
file(READ ${dir}/warm.err warm_err)
string(FIND "${warm_err}" " simulated=0 " warm_pos)
if(warm_pos EQUAL -1)
  message(FATAL_ERROR
          "the warm multi-workload run re-simulated points (see "
          "${dir}/warm.err)")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${dir}/cold.out ${dir}/warm.out
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "warm stdout differs from cold (diff ${dir}/cold.out "
          "${dir}/warm.out)")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${dir}/cold.csv ${dir}/warm.csv
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "warm CSV differs from cold (diff ${dir}/cold.csv "
          "${dir}/warm.csv)")
endif()

# ---- (c) --workload paper == the flagless default (fig6) ------------------
execute_process(
  COMMAND ${FIG6} --quick --jobs 2
  OUTPUT_FILE ${dir}/fig6_default.out
  ERROR_FILE ${dir}/fig6_default.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig6 default run exited with ${rc}")
endif()
execute_process(
  COMMAND ${FIG6} --quick --jobs 2 --workload paper
  OUTPUT_FILE ${dir}/fig6_paper.out
  ERROR_FILE ${dir}/fig6_paper.err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig6 --workload paper exited with ${rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${dir}/fig6_default.out ${dir}/fig6_paper.out
  RESULT_VARIABLE same
)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
          "fig6 --workload paper output differs from the default run "
          "(diff ${dir}/fig6_default.out ${dir}/fig6_paper.out)")
endif()

message(STATUS "workload_axis: fingerprints distinct, warm re-run "
               "byte-identical with zero simulations, --workload paper "
               "matches the default")
