# Runs a bench with no --batch flag and again with --batch K for K in
# 1, 2, 4, and fails unless all four stdouts are byte-identical. This
# is the determinism acceptance gate for the batched (interleaved)
# execution mode of ExperimentRunner: grouping K sweep points into one
# worker task and advancing their simulations in fixed cycle quanta
# must never change a single result byte.
#
# Usage: cmake -DBENCH=<momsim> -DSUBCMD=<name> -DWORKDIR=<dir>
#              -P BatchSizeEquivalence.cmake

if(NOT BENCH)
  message(FATAL_ERROR "BENCH not set")
endif()
if(NOT SUBCMD)
  message(FATAL_ERROR "SUBCMD not set")
endif()
if(NOT WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(base ${WORKDIR}/${SUBCMD}.nobatch.out)
execute_process(
  COMMAND ${BENCH} ${SUBCMD} --quick
  OUTPUT_FILE ${base}
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} ${SUBCMD} --quick exited with ${rc}")
endif()

foreach(k 1 2 4)
  set(out ${WORKDIR}/${SUBCMD}.batch${k}.out)
  execute_process(
    COMMAND ${BENCH} ${SUBCMD} --quick --batch ${k}
    OUTPUT_FILE ${out}
    RESULT_VARIABLE rc
  )
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "${BENCH} ${SUBCMD} --quick --batch ${k} exited with ${rc}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${base} ${out}
    RESULT_VARIABLE same
  )
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
            "${SUBCMD}: stdout differs between no --batch and "
            "--batch ${k} (${base} vs ${out})")
  endif()
endforeach()
message(STATUS "${SUBCMD}: --batch 1/2/4 outputs match the unbatched run")
