/**
 * @file
 * Reproduces Table 4: instruction-cache hit rate, L1 data hit rate and
 * average L1 latency as the thread count grows, for both ISAs under the
 * conventional hierarchy. Registered as `momsim table4`.
 *
 * Expected shape (paper): hit rates fall monotonically with thread
 * count (mutual interference); MMX's L1 behaviour degrades more steeply
 * than MOM's (98.4->86.8% vs 98.4->93.7%); average L1 latency grows to
 * several cycles at 8 threads (6.81 MMX vs 4.51 MOM).
 */

#include <cstdio>

#include "svc/bench_registry.hh"

namespace momsim::svc
{

BenchDef
makeTable4Def()
{
    using cpu::FetchPolicy;
    using driver::ResultRow;
    using driver::ResultSink;
    using driver::SweepGrid;
    using isa::SimdIsa;
    using mem::MemModel;

    BenchDef def;
    def.name = "table4";
    def.oldBinary = "bench_table4_cache_behavior";
    def.summary = "Table 4: cache behaviour vs threads";
    def.grid = [](const driver::BenchOptions &) {
        SweepGrid grid;
        grid.isas({ SimdIsa::Mmx, SimdIsa::Mom })
            .threadCounts({ 1, 2, 4, 8 })
            .memModels({ MemModel::Conventional });
        return grid;
    };
    def.print = [](driver::BenchHarness &bench, const ResultSink &all) {
        std::printf("Table 4: cache behaviour vs threads "
                    "(conventional hierarchy)\n");
        bench.perWorkload(all, [](const ResultSink &sink,
                                  const std::string &) {
            std::printf("%-26s | %7s %7s %7s %7s\n", "metric", "1 thr",
                        "2 thr", "4 thr", "8 thr");
            std::printf("-----------------------------------------------"
                        "---------------\n");

            for (SimdIsa simd : { SimdIsa::Mmx, SimdIsa::Mom }) {
                double ihit[4], dhit[4], lat[4];
                int c = 0;
                for (int threads : { 1, 2, 4, 8 }) {
                    const ResultRow *row =
                        sink.find(simd, threads, MemModel::Conventional,
                                  FetchPolicy::RoundRobin);
                    ihit[c] = row ? row->run.icacheHitRate : 0.0;
                    dhit[c] = row ? row->run.l1HitRate : 0.0;
                    lat[c] = row ? row->run.l1AvgLatency : 0.0;
                    ++c;
                }
                std::printf("I-cache hit rate  %-8s | %6.1f%% %6.1f%% "
                            "%6.1f%% %6.1f%%\n", toString(simd),
                            100 * ihit[0], 100 * ihit[1], 100 * ihit[2],
                            100 * ihit[3]);
                std::printf("L1 hit rate       %-8s | %6.1f%% %6.1f%% "
                            "%6.1f%% %6.1f%%\n", toString(simd),
                            100 * dhit[0], 100 * dhit[1], 100 * dhit[2],
                            100 * dhit[3]);
                std::printf("L1 avg latency    %-8s | %7.2f %7.2f %7.2f "
                            "%7.2f\n",
                            toString(simd), lat[0], lat[1], lat[2],
                            lat[3]);
            }
            std::printf("-----------------------------------------------"
                        "---------------\n");
            std::printf("paper: L1 hit MMX 98.4->86.8%%, MOM "
                        "98.4->93.7%%; latency MMX 1.39->6.81, MOM "
                        "1.74->4.51\n");
        });
    };
    return def;
}

} // namespace momsim::svc
