/**
 * @file
 * Reproduces Figure 4: throughput vs thread count under the ideal
 * memory system (no cache misses, no bank conflicts). Registered as
 * `momsim fig4`.
 *
 * Expected shape (paper): SMT+MMX IPC grows 2.47 -> 5.0 from 1 to 8
 * threads (2.02x); SMT+MOM EIPC grows 2.98 -> 6.19 (2.08x); MOM stays
 * ahead of MMX at every thread count (~20% at 1 thread).
 */

#include <cstdio>

#include "svc/bench_registry.hh"

namespace momsim::svc
{

using cpu::FetchPolicy;
using driver::ResultSink;
using driver::SweepGrid;
using isa::SimdIsa;
using mem::MemModel;

BenchDef
makeFig4Def()
{
    BenchDef def;
    def.name = "fig4";
    def.oldBinary = "bench_fig4_ideal_memory";
    def.summary = "Figure 4: performance with perfect cache";
    def.grid = [](const driver::BenchOptions &) {
        SweepGrid grid;
        grid.isas({ SimdIsa::Mmx, SimdIsa::Mom })
            .threadCounts({ 1, 2, 4, 8 })
            .memModels({ MemModel::Perfect });
        return grid;
    };
    def.print = [](driver::BenchHarness &bench, const ResultSink &all) {
        std::printf("Figure 4: performance with perfect cache\n");
        bench.perWorkload(all, [](const ResultSink &sink,
                                  const std::string &) {
            std::printf("%-8s | %-10s | %-10s | MOM/MMX\n", "threads",
                        "MMX IPC", "MOM EIPC");
            std::printf("--------------------------------------------\n");

            double base[2] = { 0, 0 };
            for (int threads : { 1, 2, 4, 8 }) {
                double v[2];
                int i = 0;
                for (SimdIsa simd : { SimdIsa::Mmx, SimdIsa::Mom }) {
                    v[i] = sink.headlineAt(simd, threads,
                                           MemModel::Perfect,
                                           FetchPolicy::RoundRobin);
                    if (threads == 1)
                        base[i] = v[i];
                    ++i;
                }
                std::printf("%-8d | %-10.2f | %-10.2f | %.2f\n", threads,
                            v[0], v[1], v[1] / v[0]);
            }
            std::printf("--------------------------------------------\n");
            std::printf("paper: MMX 2.47->5.00 (2.02x), MOM 2.98->6.19 "
                        "(2.08x)\n");
            std::printf("1-thread MOM/MMX advantage (paper ~1.20): %.2f\n",
                        base[1] / base[0]);
        });
    };
    return def;
}

} // namespace momsim::svc
