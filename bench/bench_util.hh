/**
 * @file
 * Shared plumbing for the paper-reproduction benches: builds the
 * paper-scale workload once per binary and provides the standard run
 * wrapper plus table formatting.
 */

#ifndef MOMSIM_BENCH_BENCH_UTIL_HH
#define MOMSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>

#include "core/simulation.hh"
#include "workloads/media_workload.hh"

namespace momsim::bench
{

using core::RunResult;
using core::Simulation;
using cpu::CoreConfig;
using cpu::FetchPolicy;
using isa::SimdIsa;
using mem::MemModel;
using workloads::MediaWorkload;
using workloads::WorkloadScale;

/** Build (and cache per process) the paper-scale workload. */
inline MediaWorkload &
paperWorkload()
{
    static std::unique_ptr<MediaWorkload> wl = [] {
        std::fprintf(stderr, "[bench] building paper-scale workload "
                             "(both ISAs)...\n");
        auto w = MediaWorkload::build(WorkloadScale::Paper);
        std::fprintf(stderr, "[bench] workload ready\n");
        return w;
    }();
    return *wl;
}

/** One standard data point: ISA x threads x memory x fetch policy. */
inline RunResult
runPoint(SimdIsa simd, int threads, MemModel memModel, FetchPolicy policy)
{
    MediaWorkload &wl = paperWorkload();
    CoreConfig cfg = CoreConfig::preset(threads, simd, policy);
    Simulation sim(cfg, memModel, wl.rotation(simd));
    return sim.run();
}

/** The headline metric: IPC for MMX machines, EIPC for MOM machines. */
inline double
perf(const RunResult &r, SimdIsa simd)
{
    return simd == SimdIsa::Mom ? r.eipc : r.ipc;
}

inline const char *
perfName(SimdIsa simd)
{
    return simd == SimdIsa::Mom ? "EIPC" : "IPC";
}

} // namespace momsim::bench

#endif // MOMSIM_BENCH_BENCH_UTIL_HH
