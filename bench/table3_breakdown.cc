/**
 * @file
 * Reproduces Table 3: instruction breakdown (% integer / fp / SIMD
 * arithmetic / memory) and equivalent-instruction counts per benchmark
 * under the MMX and MOM instruction sets. Registered as
 * `momsim table3` (no sweep stage).
 *
 * Expected shape (paper): the mix is dominated by integer instructions
 * under both ISAs (~62% average under MMX); SIMD arithmetic is a
 * minority (~16%); MOM needs ~0.76x the MMX equivalent instructions
 * overall (1087 vs 1429 Minst), with the largest reduction in mpeg2enc;
 * mesa is identical under both ISAs.
 */

#include <cstdio>
#include <vector>

#include "svc/bench_registry.hh"

namespace momsim::svc
{

BenchDef
makeTable3Def()
{
    using isa::SimdIsa;
    using workloads::MediaWorkload;

    BenchDef def;
    def.name = "table3";
    def.oldBinary = "bench_table3_breakdown";
    def.summary = "Table 3: instruction breakdown and eq-inst counts";
    def.runNoSweep = [](driver::BenchHarness &bench) {
        // One table per --workload selection (a single one by default).
        bench.perWorkload([&](const MediaWorkload &wl,
                              const std::string &) {

            // Independent trace walks (each program x 2 ISAs) on the
            // pool.
            const size_t kN = static_cast<size_t>(wl.numPrograms());
            std::vector<trace::MixSummary> mixes[2];
            mixes[0].resize(kN);
            mixes[1].resize(kN);
            bench.pool().parallelFor(2 * kN, [&](size_t task) {
                SimdIsa simd = task < kN ? SimdIsa::Mmx : SimdIsa::Mom;
                int i = static_cast<int>(task % kN);
                mixes[task < kN ? 0 : 1][static_cast<size_t>(i)] =
                    wl.program(simd, i).mix();
            });

            std::printf("Table 3: instruction breakdown (%%) and "
                        "equivalent instruction count (Kinst; mix: "
                        "%s)\n", wl.specName().c_str());
            std::printf("%-10s | %22s | %22s | ratio\n", "",
                        "MMX  int/fp/simd/mem", "MOM  int/fp/simd/mem");
            std::printf("%-10s | %22s | %22s | MOM/MMX\n", "benchmark",
                        "and Kinst", "and Kinst");
            std::printf("------------------------------------------------"
                        "-------------------------------\n");

            uint64_t totMmx = 0, totMom = 0;
            double mmxIntW = 0, mmxSimdW = 0;
            for (size_t i = 0; i < kN; ++i) {
                const auto &mmx = mixes[0][i];
                const auto &mom = mixes[1][i];
                totMmx += mmx.eqInsts;
                totMom += mom.eqInsts;
                mmxIntW +=
                    mmx.intPct() * static_cast<double>(mmx.eqInsts);
                mmxSimdW +=
                    mmx.simdPct() * static_cast<double>(mmx.eqInsts);
                std::printf("%-10s | %4.1f/%4.1f/%4.1f/%4.1f %6.0fK "
                            "| %4.1f/%4.1f/%4.1f/%4.1f %6.0fK | %.2f\n",
                            wl.name(static_cast<int>(i)).c_str(),
                            100 * mmx.intPct(), 100 * mmx.fpPct(),
                            100 * mmx.simdPct(), 100 * mmx.memPct(),
                            static_cast<double>(mmx.eqInsts) / 1000.0,
                            100 * mom.intPct(), 100 * mom.fpPct(),
                            100 * mom.simdPct(), 100 * mom.memPct(),
                            static_cast<double>(mom.eqInsts) / 1000.0,
                            static_cast<double>(mom.eqInsts) /
                                static_cast<double>(mmx.eqInsts));
            }
            std::printf("------------------------------------------------"
                        "-------------------------------\n");
            std::printf("%-10s | total %10.0fK        | total %10.0fK  "
                        "      | %.2f\n", "all",
                        static_cast<double>(totMmx) / 1000.0,
                        static_cast<double>(totMom) / 1000.0,
                        static_cast<double>(totMom) /
                            static_cast<double>(totMmx));
            std::printf("\nMMX weighted integer share: %.1f%% (paper: "
                        "~62%%); SIMD share: %.1f%% (paper: ~16%%)\n",
                        100 * mmxIntW / static_cast<double>(totMmx),
                        100 * mmxSimdW / static_cast<double>(totMmx));
            std::printf("Paper totals: 1429 vs 1087 Minst => MOM/MMX = "
                        "0.76\n");
        });
    };
    return def;
}

} // namespace momsim::svc
