/**
 * @file
 * Workload-mix sensitivity: sweeps ISA x thread count x workload mix
 * and reports, per mix, the MOM/MMX equivalent-instruction-count ratio
 * (Table 3's headline advantage) next to the simulated throughput.
 * Registered as `momsim workload_mix`.
 *
 * The paper draws its conclusions from one fixed Table-2 mix, where
 * MOM needs ~0.76x the MMX instructions. That advantage is a property
 * of the *mix*: vectorizable video/imaging kernels shrink under MOM
 * while serial speech code and unvectorized mesa do not. Sweeping the
 * registry mixes shows the ratio (and the throughput gap) shifting —
 * near parity for gsmx8, strongest for mpeg2x8 — which is exactly why
 * workloads are a first-class sweep axis.
 *
 * Default mixes: paper, decode-heavy, encode-heavy, mpeg2x8, gsmx8,
 * jpegx8. --workload NAME[,NAME...] overrides the list.
 */

#include <cstdio>
#include <string>

#include "svc/bench_registry.hh"

namespace momsim::svc
{

BenchDef
makeWorkloadMixDef()
{
    using driver::ResultSink;
    using driver::SweepGrid;
    using isa::SimdIsa;
    using mem::MemModel;

    BenchDef def;
    def.name = "workload_mix";
    def.oldBinary = "bench_workload_mix_sensitivity";
    def.summary = "Mix sensitivity: MOM's advantage across workloads";
    def.grid = [](const driver::BenchOptions &opts) {
        SweepGrid grid;
        grid.isas({ SimdIsa::Mmx, SimdIsa::Mom })
            .threadCounts({ 1, 4, 8 })
            .memModels({ MemModel::Conventional });
        if (opts.workloads.empty()) {
            // The bench's own default axis; an explicit --workload wins
            // (BenchHarness folds it in when the grid leaves this
            // unset).
            grid.workloadSpecs({ "paper", "decode-heavy", "encode-heavy",
                                 "mpeg2x8", "gsmx8", "jpegx8" });
        }
        return grid;
    };
    def.print = [](driver::BenchHarness &bench, const ResultSink &all) {
        std::printf("Workload-mix sensitivity: MOM's instruction-count "
                    "advantage across mixes\n");
        std::printf("(conventional hierarchy, round-robin fetch; inst "
                    "ratio < 1.0 favours MOM)\n");

        double ratioMin = 0.0, ratioMax = 0.0;
        bench.perWorkload(all, [&](const ResultSink &sink,
                                   const std::string &name) {
            const workloads::MediaWorkload &wl = *bench.repo().get(name);
            uint64_t mmxEq = 0, momEq = 0;
            for (int i = 0; i < wl.numPrograms(); ++i) {
                mmxEq += wl.eqInsts(SimdIsa::Mmx, i);
                momEq += wl.eqInsts(SimdIsa::Mom, i);
            }
            double ratio = static_cast<double>(momEq) /
                           static_cast<double>(mmxEq);
            if (ratioMin == 0.0 || ratio < ratioMin)
                ratioMin = ratio;
            if (ratio > ratioMax)
                ratioMax = ratio;

            std::printf("MOM/MMX equivalent instructions: %.2f "
                        "(%llu vs %llu Kinst, %d programs)\n", ratio,
                        static_cast<unsigned long long>(momEq / 1000),
                        static_cast<unsigned long long>(mmxEq / 1000),
                        wl.numPrograms());
            std::printf("%-8s | %8s | %8s | MOM/MMX\n", "threads",
                        "MMX IPC", "MOM EIPC");
            std::printf("----------------------------------------\n");
            for (int threads : { 1, 4, 8 }) {
                double mmx = sink.headlineAt(SimdIsa::Mmx, threads,
                                             MemModel::Conventional,
                                             cpu::FetchPolicy::RoundRobin);
                double mom = sink.headlineAt(SimdIsa::Mom, threads,
                                             MemModel::Conventional,
                                             cpu::FetchPolicy::RoundRobin);
                std::printf("%-8d | %8.2f | %8.2f | ", threads, mmx,
                            mom);
                if (mmx > 0.0 && mom > 0.0)
                    std::printf("%.2f\n", mom / mmx);
                else
                    std::printf("n/a\n");   // point absent (shard run)
            }
            std::printf("----------------------------------------\n");
        });

        std::printf("\ninstruction-ratio spread across mixes: %.2f .. "
                    "%.2f (paper mix: ~0.76)\n", ratioMin, ratioMax);
    };
    return def;
}

} // namespace momsim::svc
