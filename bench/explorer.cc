/**
 * @file
 * Interactive-style configuration explorer: run any combination of ISA,
 * thread count, memory model and fetch policy over the full workload.
 * Registered as `momsim explorer`; the example_fetch_policy_explorer
 * binary is a thin wrapper over this entry.
 *
 *   $ momsim explorer [--quick] [--jobs N] \
 *         [--cache-dir DIR] [--shard I/N] [--merge FILES] [--dry-run] \
 *         [mmx|mom] [threads] [perfect|conventional|decoupled] \
 *         [rr|ic|oc|bl]
 *
 * With no positional arguments, sweeps the fetch policies at 8 threads
 * on the decoupled MOM machine through the threaded experiment runner.
 * Flag/positional splitting is the harness parser's positional mode
 * (BenchOptions::parseInto) — the old hand-rolled takesValue() scan
 * over argv is gone.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "svc/bench_registry.hh"

namespace momsim::svc
{

namespace
{

using driver::ResultRow;
using driver::ResultSink;
using driver::SweepGrid;

cpu::FetchPolicy
parsePolicy(const char *str)
{
    if (std::strcmp(str, "ic") == 0)
        return cpu::FetchPolicy::ICount;
    if (std::strcmp(str, "oc") == 0)
        return cpu::FetchPolicy::OCount;
    if (std::strcmp(str, "bl") == 0)
        return cpu::FetchPolicy::Balance;
    return cpu::FetchPolicy::RoundRobin;
}

mem::MemModel
parseMem(const char *str)
{
    if (std::strcmp(str, "perfect") == 0)
        return mem::MemModel::Perfect;
    if (std::strcmp(str, "decoupled") == 0)
        return mem::MemModel::Decoupled;
    return mem::MemModel::Conventional;
}

void
printRow(const ResultRow &r)
{
    std::printf("%s x%d %-12s %-3s | IPC %5.2f  EIPC %5.2f | L1 %5.1f%% "
                "lat %5.2f | IC %5.1f%%\n",
                isa::toString(r.simd), r.threads, toString(r.memModel),
                toString(r.policy), r.run.ipc, r.run.eipc,
                100 * r.run.l1HitRate, r.run.l1AvgLatency,
                100 * r.run.icacheHitRate);
}

int
runExplorer(driver::BenchHarness &bench,
            const std::vector<std::string> &positional)
{
    if (positional.size() >= 4) {
        SweepGrid grid;
        int threads = std::atoi(positional[1].c_str());
        if (threads < 1 || threads > 8)
            threads = 8;
        grid.isas({ positional[0] == "mom" ? isa::SimdIsa::Mom
                                           : isa::SimdIsa::Mmx })
            .threadCounts({ threads })
            .memModels({ parseMem(positional[2].c_str()) })
            .policies({ parsePolicy(positional[3].c_str()) });
        ResultSink sink = bench.run(grid);
        if (sink.empty()) {
            // Under --shard the single point may belong to another
            // shard; nothing of ours to print.
            std::printf("(point assigned to another shard)\n");
            return 0;
        }
        // One row per selected --workload (a single one by default).
        for (const ResultRow &r : sink.rows())
            printRow(r);
        return 0;
    }

    std::printf("sweeping fetch policies (MOM, 8 threads, decoupled):\n");
    SweepGrid grid;
    grid.isas({ isa::SimdIsa::Mom })
        .threadCounts({ 8 })
        .memModels({ mem::MemModel::Decoupled })
        .policies({ cpu::FetchPolicy::RoundRobin, cpu::FetchPolicy::ICount,
                    cpu::FetchPolicy::OCount, cpu::FetchPolicy::Balance });
    ResultSink all = bench.run(grid);
    bench.perWorkload(all, [](const ResultSink &sink,
                              const std::string &) {
        for (const ResultRow &r : sink.rows())
            printRow(r);

        std::vector<double> headlines;
        for (const ResultRow &r : sink.rows())
            headlines.push_back(r.headline);
        std::printf("geomean %s across policies: %.2f\n",
                    ResultSink::headlineName(isa::SimdIsa::Mom),
                    ResultSink::geomean(headlines));
    });
    return 0;
}

} // namespace

BenchDef
makeExplorerDef()
{
    BenchDef def;
    def.name = "explorer";
    def.oldBinary = "example_fetch_policy_explorer";
    def.summary = "Explore one configuration point or a policy sweep";
    def.wantsPositionals = true;
    def.runCustom = runExplorer;
    return def;
}

} // namespace momsim::svc
