/**
 * @file
 * Reproduces Figure 6: impact of the fetch policies (RR / ICOUNT /
 * OCOUNT / BALANCE) under the conventional hierarchy. Registered as
 * `momsim fig6`.
 *
 * Expected shape (paper): smart policies only pay off at high thread
 * counts (single-digit % over round robin, up to ~9%); ICOUNT is the
 * best MMX policy, OCOUNT the best MOM policy, BALANCE is a
 * cost-effective middle ground; 4 threads still beats 8.
 */

#include <cstdio>

#include "bench/policy_table.hh"
#include "svc/bench_registry.hh"

namespace momsim::svc
{

BenchDef
makeFig6Def()
{
    BenchDef def;
    def.name = "fig6";
    def.oldBinary = "bench_fig6_fetch_policies";
    def.summary = "Figure 6: fetch policies, conventional hierarchy";
    def.grid = [](const driver::BenchOptions &) {
        return bench::policyGrid(mem::MemModel::Conventional);
    };
    def.print = [](driver::BenchHarness &bench,
                   const driver::ResultSink &all) {
        std::printf("Figure 6: fetch policies, conventional hierarchy\n");
        bench.perWorkload(all, [](const driver::ResultSink &sink,
                                  const std::string &) {
            double rr[2][4];
            bench::printPolicyTable(sink, mem::MemModel::Conventional, rr);
        });
        std::printf("paper: gains only at high thread counts, up to ~9%%; "
                    "IC best for MMX, OC best for MOM\n");
    };
    return def;
}

} // namespace momsim::svc
