/**
 * @file
 * Reproduces Figure 6: impact of the fetch policies (RR / ICOUNT /
 * OCOUNT / BALANCE) under the conventional hierarchy.
 *
 * Expected shape (paper): smart policies only pay off at high thread
 * counts (single-digit % over round robin, up to ~9%); ICOUNT is the
 * best MMX policy, OCOUNT the best MOM policy, BALANCE is a
 * cost-effective middle ground; 4 threads still beats 8.
 */

#include <cstdio>

#include "bench/policy_table.hh"

using namespace momsim;
using driver::BenchHarness;
using driver::ResultSink;
using mem::MemModel;

int
main(int argc, char **argv)
{
    BenchHarness bench(argc, argv, "fig6");
    ResultSink all = bench.run(bench::policyGrid(MemModel::Conventional));

    std::printf("Figure 6: fetch policies, conventional hierarchy\n");
    bench.perWorkload(all, [](const ResultSink &sink,
                              const std::string &) {
        double rr[2][4];
        bench::printPolicyTable(sink, MemModel::Conventional, rr);
    });
    std::printf("paper: gains only at high thread counts, up to ~9%%; "
                "IC best for MMX, OC best for MOM\n");
    return 0;
}
