/**
 * @file
 * Reproduces Figure 6: impact of the fetch policies (RR / ICOUNT /
 * OCOUNT / BALANCE) under the conventional hierarchy.
 *
 * Expected shape (paper): smart policies only pay off at high thread
 * counts (single-digit % over round robin, up to ~9%); ICOUNT is the
 * best MMX policy, OCOUNT the best MOM policy, BALANCE is a
 * cost-effective middle ground; 4 threads still beats 8.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace momsim;
using namespace momsim::bench;

int
main()
{
    std::printf("Figure 6: fetch policies, conventional hierarchy\n");
    std::printf("%-6s %-8s | %8s %8s %8s %8s | best vs RR\n", "isa",
                "threads", "RR", "IC", "OC", "BL");
    std::printf("------------------------------------------------------"
                "--------\n");
    for (SimdIsa simd : { SimdIsa::Mmx, SimdIsa::Mom }) {
        for (int threads : { 1, 2, 4, 8 }) {
            double v[4];
            int i = 0;
            for (FetchPolicy pol : { FetchPolicy::RoundRobin,
                                     FetchPolicy::ICount,
                                     FetchPolicy::OCount,
                                     FetchPolicy::Balance }) {
                if (simd == SimdIsa::Mmx && pol == FetchPolicy::OCount) {
                    v[i++] = 0.0;   // OCOUNT is MOM-specific (SL register)
                    continue;
                }
                RunResult r = runPoint(simd, threads,
                                       MemModel::Conventional, pol);
                v[i++] = perf(r, simd);
            }
            double best = std::max({ v[1], v[2], v[3] });
            std::printf("%-6s %-8d | %8.2f %8.2f %8.2f %8.2f | +%.1f%%\n",
                        toString(simd), threads, v[0], v[1], v[2], v[3],
                        100 * (best / v[0] - 1.0));
        }
    }
    std::printf("------------------------------------------------------"
                "--------\n");
    std::printf("paper: gains only at high thread counts, up to ~9%%; "
                "IC best for MMX, OC best for MOM\n");
    return 0;
}
