/**
 * @file
 * Reproduces Figure 9 and the paper's headline result: ideal vs
 * conventional vs decoupled hierarchies for both ISAs (ICOUNT for MMX,
 * OCOUNT for MOM, as in the paper's figure), and the end-to-end
 * speedups over the single-threaded MMX baseline. Registered as
 * `momsim fig9`.
 *
 * Expected shape (paper): with the decoupled hierarchy at 8 threads,
 * SMT+MOM sits only ~15% below ideal while SMT+MMX stays ~30% below;
 * overall speedups vs 1-thread MMX are ~2.1x (SMT+MMX) and ~3.3x
 * (SMT+MOM).
 */

#include <algorithm>
#include <cstdio>

#include "svc/bench_registry.hh"

namespace momsim::svc
{

using cpu::FetchPolicy;
using driver::ExperimentSpec;
using driver::ResultSink;
using driver::SweepGrid;
using isa::SimdIsa;
using mem::MemModel;

BenchDef
makeFig9Def()
{
    BenchDef def;
    def.name = "fig9";
    def.oldBinary = "bench_fig9_hierarchy_comparison";
    def.summary = "Figure 9: hierarchies compared, headline speedups";
    def.grid = [](const driver::BenchOptions &) {
        SweepGrid grid;
        grid.isas({ SimdIsa::Mmx, SimdIsa::Mom })
            .threadCounts({ 1, 2, 4, 8 })
            .memModels({ MemModel::Perfect, MemModel::Conventional,
                         MemModel::Decoupled })
            .policies({ FetchPolicy::ICount, FetchPolicy::OCount })
            .skip([](const ExperimentSpec &s) {
                // The paper's figure pairs each ISA with its best policy.
                return (s.simd == SimdIsa::Mmx &&
                        s.policy == FetchPolicy::OCount) ||
                       (s.simd == SimdIsa::Mom &&
                        s.policy == FetchPolicy::ICount);
            });
        return grid;
    };
    def.print = [](driver::BenchHarness &bench, const ResultSink &all) {
        std::printf("Figure 9: hierarchies compared (MMX: ICOUNT, "
                    "MOM: OCOUNT)\n");
        bench.perWorkload(all, [](const ResultSink &sink,
                                  const std::string &) {
            std::printf("%-6s %-8s | %8s %8s %8s | decoupled vs ideal\n",
                        "isa", "threads", "ideal", "conv", "decoup");
            std::printf("------------------------------------------------"
                        "------------\n");

            double mmxBaseline = 0.0;
            double best[2] = { 0, 0 };
            double idealAt8[2] = { 0, 0 }, decoupAt8[2] = { 0, 0 };
            int isaIdx = 0;
            for (SimdIsa simd : { SimdIsa::Mmx, SimdIsa::Mom }) {
                FetchPolicy pol = simd == SimdIsa::Mmx
                    ? FetchPolicy::ICount : FetchPolicy::OCount;
                for (int threads : { 1, 2, 4, 8 }) {
                    double vi = sink.headlineAt(simd, threads,
                                                MemModel::Perfect, pol);
                    double vc = sink.headlineAt(simd, threads,
                                                MemModel::Conventional,
                                                pol);
                    double vd = sink.headlineAt(simd, threads,
                                                MemModel::Decoupled, pol);
                    if (simd == SimdIsa::Mmx && threads == 1)
                        mmxBaseline = vc;
                    best[isaIdx] = std::max(best[isaIdx],
                                            std::max(vc, vd));
                    if (threads == 8) {
                        idealAt8[isaIdx] = vi;
                        decoupAt8[isaIdx] = vd;
                    }
                    std::printf("%-6s %-8d | %8.2f %8.2f %8.2f | "
                                "-%.0f%%\n",
                                toString(simd), threads, vi, vc, vd,
                                100 * (1 - vd / vi));
                }
                ++isaIdx;
            }
            std::printf("------------------------------------------------"
                        "------------\n");
            std::printf("8-thread decoupled vs ideal (paper ~-30%% MMX, "
                        "~-15%% MOM): MMX -%.0f%%, MOM -%.0f%%\n",
                        100 * (1 - decoupAt8[0] / idealAt8[0]),
                        100 * (1 - decoupAt8[1] / idealAt8[1]));
            std::printf("\nHeadline speedups vs 1-thread MMX with real "
                        "memory (paper: 2.1x MMX, 3.3x MOM):\n");
            std::printf("  SMT+MMX: %.2fx    SMT+MOM: %.2fx\n",
                        best[0] / mmxBaseline, best[1] / mmxBaseline);
        });
    };
    return def;
}

} // namespace momsim::svc
