/**
 * @file
 * The fetch-policy table shared by Figure 6 (conventional hierarchy)
 * and Figure 8 (decoupled hierarchy): RR / ICOUNT / OCOUNT / BALANCE
 * per ISA and thread count, with the best-over-RR gain column.
 */

#ifndef MOMSIM_BENCH_POLICY_TABLE_HH
#define MOMSIM_BENCH_POLICY_TABLE_HH

#include <algorithm>
#include <cstdio>

#include "driver/bench_harness.hh"

namespace momsim::bench
{

/** The full policy axis; OCOUNT points are absent on MMX machines. */
inline driver::SweepGrid
policyGrid(mem::MemModel memModel)
{
    driver::SweepGrid grid;
    grid.isas({ isa::SimdIsa::Mmx, isa::SimdIsa::Mom })
        .threadCounts({ 1, 2, 4, 8 })
        .memModels({ memModel })
        .policies({ cpu::FetchPolicy::RoundRobin, cpu::FetchPolicy::ICount,
                    cpu::FetchPolicy::OCount, cpu::FetchPolicy::Balance })
        .skip([](const driver::ExperimentSpec &s) {
            // OCOUNT needs the MOM Stream Length register.
            return s.simd == isa::SimdIsa::Mmx &&
                   s.policy == cpu::FetchPolicy::OCount;
        });
    return grid;
}

/**
 * Print the policy table rows; @p rr receives the round-robin headline
 * per [isa index][thread index] for the callers' footers.
 */
inline void
printPolicyTable(const driver::ResultSink &sink, mem::MemModel memModel,
                 double rr[2][4])
{
    const std::string hr = driver::ResultSink::rule(62);
    std::printf("%-6s %-8s | %8s %8s %8s %8s | best vs RR\n", "isa",
                "threads", "RR", "IC", "OC", "BL");
    std::printf("%s\n", hr.c_str());
    int isaIdx = 0;
    for (isa::SimdIsa simd : { isa::SimdIsa::Mmx, isa::SimdIsa::Mom }) {
        int thrIdx = 0;
        for (int threads : { 1, 2, 4, 8 }) {
            double v[4];
            int i = 0;
            for (cpu::FetchPolicy pol : { cpu::FetchPolicy::RoundRobin,
                                          cpu::FetchPolicy::ICount,
                                          cpu::FetchPolicy::OCount,
                                          cpu::FetchPolicy::Balance }) {
                // Skipped points (MMX+OCOUNT) read back as 0.0.
                v[i++] = sink.headlineAt(simd, threads, memModel, pol);
            }
            rr[isaIdx][thrIdx++] = v[0];
            double best = std::max({ v[1], v[2], v[3] });
            std::printf("%-6s %-8d | %8.2f %8.2f %8.2f %8.2f | ",
                        toString(simd), threads, v[0], v[1], v[2], v[3]);
            if (v[0] > 0.0 && best > 0.0)
                std::printf("+%.1f%%\n", 100 * (best / v[0] - 1.0));
            else
                std::printf("n/a\n");  // point(s) absent (shard run)
        }
        ++isaIdx;
    }
    std::printf("%s\n", hr.c_str());
}

} // namespace momsim::bench

#endif // MOMSIM_BENCH_POLICY_TABLE_HH
