/**
 * @file
 * Simulator-throughput microbench: how many simulated megacycles per
 * wall second the kernel sustains across ISA x thread-count, under the
 * conventional hierarchy (the shape of the paper's main sweeps).
 * Registered as `momsim sim_throughput`.
 *
 * This measures the *simulator*, not the simulated machine: the numbers
 * come from each run's self-measurement (RunResult.simKcps, serialized
 * with every row since schema v4), so `--json` emits a machine-readable
 * perf trajectory — CI uploads exactly that as a build artifact.
 *
 * Unlike the figure benches, this stdout is intentionally NOT
 * byte-stable across runs (it prints wall-clock numbers); never add it
 * to the byte-equivalence CTest gates (cli_equivalence skips it).
 * Combining with --cache-dir replays *old* measurements for cached
 * points — meaningful for a trajectory, useless for benchmarking this
 * build.
 */

#include <cstdio>

#include "svc/bench_registry.hh"

namespace momsim::svc
{

BenchDef
makeSimThroughputDef()
{
    using driver::ResultRow;
    using driver::ResultSink;
    using driver::SweepGrid;

    BenchDef def;
    def.name = "sim_throughput";
    def.oldBinary = "bench_sim_throughput";
    def.summary = "Simulator-kernel Mcycles/s microbench (not "
                  "byte-stable)";
    def.grid = [](const driver::BenchOptions &) {
        SweepGrid grid;
        grid.isas({ isa::SimdIsa::Mmx, isa::SimdIsa::Mom })
            .threadCounts({ 1, 2, 4, 8 })
            .memModels({ mem::MemModel::Conventional })
            .policies({ cpu::FetchPolicy::RoundRobin });
        return grid;
    };
    def.print = [](driver::BenchHarness &bench, const ResultSink &all) {
        std::printf("Simulation-kernel throughput (conventional "
                    "hierarchy, RR fetch)\n");
        // The execution mode this process measured: batched runs
        // produce byte-identical rows but different wall times, so the
        // summary row names the mode for cross-run comparison.
        const int jobs = bench.pool().size();
        const int batch = bench.options().batch;
        bench.perWorkload(all, [jobs, batch](const ResultSink &sink,
                                             const std::string &) {
            std::printf("%-6s %-8s | %12s %9s %10s\n", "isa", "threads",
                        "sim Mcycles", "wall ms", "Mcycles/s");
            std::printf("%s\n", ResultSink::rule(52).c_str());
            double totalMcycles = 0.0, totalWallMs = 0.0;
            for (const ResultRow &r : sink.rows()) {
                double mcycles = static_cast<double>(r.run.cycles) / 1e6;
                totalMcycles += mcycles;
                totalWallMs += r.run.wallMs;
                std::printf("%-6s %-8d | %12.2f %9.0f %10.2f\n",
                            isa::toString(r.simd), r.threads, mcycles,
                            r.run.wallMs, r.run.simKcps / 1000.0);
            }
            std::printf("%s\n", ResultSink::rule(52).c_str());
            double aggregate = totalWallMs > 0.0
                ? totalMcycles / (totalWallMs / 1000.0)
                : 0.0;
            std::printf("%-15s | %12.2f %9.0f %10.2f\n", "aggregate",
                        totalMcycles, totalWallMs, aggregate);
            std::string mode = strfmt("jobs=%d batch=%d", jobs, batch);
            std::printf("%-15s | %12s %9s %10.2f\n", mode.c_str(), "",
                        "", aggregate);
        });
        std::printf("(simulator self-measurement; see README \"Kernel "
                    "performance\" for the tracked trajectory)\n");
    };
    return def;
}

} // namespace momsim::svc
