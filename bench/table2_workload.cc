/**
 * @file
 * Reproduces Table 2: the selected workload mix's description — which
 * benchmark fills each MPEG-4 profile, its data set, and its measured
 * dynamic characteristics (our scaled equivalents of the paper's
 * columns). Defaults to the paper mix; --workload prints any registry
 * mix the same way. Registered as `momsim table2` (no sweep stage).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "svc/bench_registry.hh"

namespace momsim::svc
{

namespace
{

using isa::SimdIsa;
using workloads::MediaWorkload;
using workloads::ProgramKind;

/** MPEG-4 profile each benchmark role stands in for. */
const char *
profileOf(ProgramKind kind)
{
    switch (kind) {
      case ProgramKind::Mpeg2Enc: return "MPEG-4 video (encode)";
      case ProgramKind::Mpeg2Dec: return "MPEG-4 video (decode)";
      case ProgramKind::GsmEnc: return "MPEG-4 audio speech (encode)";
      case ProgramKind::GsmDec: return "MPEG-4 audio speech (decode)";
      case ProgramKind::JpegEnc: return "MPEG-4 still image 2D (enc)";
      case ProgramKind::JpegDec: return "MPEG-4 still image 2D (dec)";
      case ProgramKind::Mesa: return "MPEG-4 still image 3D";
    }
    return "?";
}

const char *
datasetOf(ProgramKind kind)
{
    switch (kind) {
      case ProgramKind::Mpeg2Enc:
        return "QCIF 176x144, 3 frames (I P P), +/-4 full search";
      case ProgramKind::Mpeg2Dec: return "bitstream from mpeg2enc";
      case ProgramKind::GsmEnc:
      case ProgramKind::GsmDec:
        return "1.1 s synthetic speech, 160-sample frames";
      case ProgramKind::JpegEnc: return "160x128 synthetic RGB image";
      case ProgramKind::JpegDec: return "JFIF-style stream from jpegenc";
      case ProgramKind::Mesa:
        return "torus, 280 triangles, 160x120, 3 frames";
    }
    return "?";
}

const char *
ordinalSuffix(int n)
{
    if (n == 2)
        return "nd";
    if (n == 3)
        return "rd";
    return "th";
}

} // namespace

BenchDef
makeTable2Def()
{
    BenchDef def;
    def.name = "table2";
    def.oldBinary = "bench_table2_workload";
    def.summary = "Table 2: multiprogrammed workload description";
    def.runNoSweep = [](driver::BenchHarness &bench) {
        // One table per --workload selection (a single one by default).
        bench.perWorkload([&](const MediaWorkload &wl,
                              const std::string &) {
            const int n = wl.numPrograms();

            // Trace accounting is embarrassingly parallel: one task per
            // program, results landing in per-index slots.
            std::vector<trace::MixSummary> mixes(static_cast<size_t>(n));
            bench.pool().parallelFor(static_cast<size_t>(n),
                                     [&](size_t i) {
                mixes[i] =
                    wl.program(SimdIsa::Mmx, static_cast<int>(i)).mix();
            });

            std::printf("Table 2: multiprogrammed workload description "
                        "(mix: %s)\n", wl.specName().c_str());
            std::printf("%-10s | %-29s | %-44s | %9s | %7s | %5s\n",
                        "instance", "profile", "data set", "Kinst MMX",
                        "branch%", "mem%");
            std::printf("------------------------------------------------"
                        "------------------------------------------------"
                        "----------------------\n");
            int copies[workloads::kNumProgramKinds] = {};
            for (int i = 0; i < n; ++i) {
                const auto &mix = mixes[static_cast<size_t>(i)];
                ProgramKind kind = wl.kind(i);
                int ordinal = ++copies[static_cast<int>(kind)];
                std::string profile = profileOf(kind);
                if (ordinal > 1) {
                    // The paper annotates repeats:
                    // "MPEG-4 video (decode, 2nd)".
                    std::string marker =
                        strfmt(", %d%s", ordinal, ordinalSuffix(ordinal));
                    if (!profile.empty() && profile.back() == ')')
                        profile.insert(profile.size() - 1, marker);
                    else
                        profile += " (" + marker.substr(2) + ")";
                }
                std::printf("%-10s | %-29s | %-44s | %9.0f | %6.1f%% | "
                            "%4.1f%%\n",
                            wl.name(i).c_str(), profile.c_str(),
                            datasetOf(kind),
                            static_cast<double>(mix.eqInsts) / 1000.0,
                            100.0 * static_cast<double>(mix.branches) /
                                static_cast<double>(mix.eqInsts),
                            100.0 * mix.memPct());
            }
            std::printf("\n(The paper used Mediabench binaries with "
                        "their reference inputs; these are the scaled\n"
                        " synthetic equivalents — see DESIGN.md "
                        "substitutions.)\n");
        });
    };
    return def;
}

} // namespace momsim::svc
