/**
 * @file
 * Reproduces Table 2: the multiprogrammed workload description — which
 * benchmark fills each MPEG-4 profile, its data set, and its measured
 * dynamic characteristics (our scaled equivalents of the paper's
 * columns).
 */

#include <cstdio>

#include "driver/bench_harness.hh"

using namespace momsim;
using driver::BenchHarness;
using isa::SimdIsa;
using workloads::MediaWorkload;

int
main(int argc, char **argv)
{
    BenchHarness bench(argc, argv, "table2");
    bench.declareNoSweep();
    MediaWorkload &wl = bench.workload();

    const char *profile[8] = {
        "MPEG-4 video (encode)", "MPEG-4 audio speech (decode)",
        "MPEG-4 video (decode)", "MPEG-4 audio speech (encode)",
        "MPEG-4 still image 2D (dec)", "MPEG-4 still image 2D (enc)",
        "MPEG-4 still image 3D", "MPEG-4 video (decode, 2nd)",
    };
    const char *dataset[8] = {
        "QCIF 176x144, 3 frames (I P P), +/-4 full search",
        "1.1 s synthetic speech, 160-sample frames",
        "bitstream from mpeg2enc",
        "1.1 s synthetic speech, 160-sample frames",
        "JFIF-style stream from jpegenc",
        "160x128 synthetic RGB image",
        "torus, 280 triangles, 160x120, 3 frames",
        "bitstream from mpeg2enc",
    };

    // Trace accounting is embarrassingly parallel: one task per
    // program, results landing in per-index slots.
    trace::MixSummary mixes[MediaWorkload::kNumPrograms];
    bench.pool().parallelFor(MediaWorkload::kNumPrograms, [&](size_t i) {
        mixes[i] = wl.program(SimdIsa::Mmx, static_cast<int>(i)).mix();
    });

    std::printf("Table 2: multiprogrammed workload description\n");
    std::printf("%-10s | %-29s | %-44s | %9s | %7s | %5s\n", "instance",
                "profile", "data set", "Kinst MMX", "branch%", "mem%");
    std::printf("--------------------------------------------------------"
                "----------------------------------------------------------"
                "----\n");
    for (int i = 0; i < MediaWorkload::kNumPrograms; ++i) {
        const auto &mix = mixes[i];
        std::printf("%-10s | %-29s | %-44s | %9.0f | %6.1f%% | %4.1f%%\n",
                    wl.name(i).c_str(), profile[i], dataset[i],
                    static_cast<double>(mix.eqInsts) / 1000.0,
                    100.0 * static_cast<double>(mix.branches) /
                        static_cast<double>(mix.eqInsts),
                    100.0 * mix.memPct());
    }
    std::printf("\n(The paper used Mediabench binaries with their reference "
                "inputs; these are the scaled\n synthetic equivalents — see "
                "DESIGN.md substitutions.)\n");
    return 0;
}
