/**
 * @file
 * Reproduces Figure 5: performance under the real (conventional)
 * memory hierarchy, against the ideal-memory curves. Registered as
 * `momsim fig5`.
 *
 * Expected shape (paper): increasing threads gives diminishing returns
 * — 4 threads outperforms 8 under the conventional hierarchy; MOM is
 * more robust (average degradation ~12% vs ~30% for MMX).
 */

#include <cstdio>

#include "svc/bench_registry.hh"

namespace momsim::svc
{

using cpu::FetchPolicy;
using driver::ResultSink;
using driver::SweepGrid;
using isa::SimdIsa;
using mem::MemModel;

BenchDef
makeFig5Def()
{
    BenchDef def;
    def.name = "fig5";
    def.oldBinary = "bench_fig5_real_memory";
    def.summary = "Figure 5: performance under real memory system";
    def.grid = [](const driver::BenchOptions &) {
        SweepGrid grid;
        grid.isas({ SimdIsa::Mmx, SimdIsa::Mom })
            .threadCounts({ 1, 2, 4, 8 })
            .memModels({ MemModel::Perfect, MemModel::Conventional });
        return grid;
    };
    def.print = [](driver::BenchHarness &bench, const ResultSink &all) {
        std::printf("Figure 5: performance under real memory system\n");
        bench.perWorkload(all, [](const ResultSink &sink,
                                  const std::string &) {
            std::printf("%-8s | %-22s | %-22s\n", "",
                        "MMX IPC (ideal/real)", "MOM EIPC (ideal/real)");
            std::printf("%-8s | %-22s | %-22s\n", "threads",
                        "and degradation", "and degradation");
            std::printf("-----------------------------------------------"
                        "-------------\n");

            double degrade[2] = { 0, 0 };
            double real4[2] = { 0, 0 }, real8[2] = { 0, 0 };
            for (int threads : { 1, 2, 4, 8 }) {
                double ideal[2], realv[2];
                int i = 0;
                for (SimdIsa simd : { SimdIsa::Mmx, SimdIsa::Mom }) {
                    ideal[i] = sink.headlineAt(simd, threads,
                                               MemModel::Perfect,
                                               FetchPolicy::RoundRobin);
                    realv[i] = sink.headlineAt(simd, threads,
                                               MemModel::Conventional,
                                               FetchPolicy::RoundRobin);
                    if (threads == 4)
                        real4[i] = realv[i];
                    if (threads == 8) {
                        real8[i] = realv[i];
                        degrade[i] = 1.0 - realv[i] / ideal[i];
                    }
                    ++i;
                }
                std::printf("%-8d | %5.2f / %5.2f  (-%4.1f%%) | %5.2f / "
                            "%5.2f  (-%4.1f%%)\n",
                            threads, ideal[0], realv[0],
                            100 * (1 - realv[0] / ideal[0]),
                            ideal[1], realv[1],
                            100 * (1 - realv[1] / ideal[1]));
            }
            std::printf("-----------------------------------------------"
                        "-------------\n");
            std::printf("4thr > 8thr under real memory (paper: yes): "
                        "MMX %s, MOM %s\n",
                        real4[0] > real8[0] ? "yes" : "NO",
                        real4[1] > real8[1] ? "yes" : "NO");
            std::printf("8-thread degradation (paper ~30%% MMX / ~12-15%% "
                        "MOM): MMX %.0f%%, MOM %.0f%%\n",
                        100 * degrade[0], 100 * degrade[1]);
        });
    };
    return def;
}

} // namespace momsim::svc
