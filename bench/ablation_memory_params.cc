/**
 * @file
 * Ablation study over the memory-system design choices the paper fixes
 * (Section 3): the 8 MSHRs, the 8-deep coalescing write buffer and the
 * 8-bank L1 organization. Run on the stress configuration (8 threads,
 * conventional hierarchy, both ISAs) where these structures matter
 * most.
 *
 * Expected: halving MSHRs or the write buffer visibly hurts — the
 * paper's choice sits near the knee; extra banks beyond 8 add little
 * because ports (4/cycle) are the next constraint; MOM is consistently
 * less sensitive than MMX (stream accesses amortize stalls).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace momsim;
using namespace momsim::bench;

namespace
{

double
runWith(SimdIsa simd, const mem::MemConfig &memCfg)
{
    MediaWorkload &wl = paperWorkload();
    CoreConfig cfg = CoreConfig::preset(8, simd);
    Simulation sim(cfg, MemModel::Conventional, wl.rotation(simd), memCfg);
    RunResult r = sim.run();
    return perf(r, simd);
}

} // namespace

int
main()
{
    std::printf("Ablation: memory-system parameters "
                "(8 threads, conventional)\n");
    std::printf("%-26s | %8s | %8s\n", "configuration", "MMX IPC",
                "MOM EIPC");
    std::printf("---------------------------------------------------\n");

    struct Variant
    {
        const char *name;
        void (*apply)(mem::MemConfig &);
    } variants[] = {
        { "baseline (paper)", [](mem::MemConfig &) {} },
        { "2 MSHRs (vs 8)", [](mem::MemConfig &m) {
              m.l1.numMshrs = 2; } },
        { "4 MSHRs (vs 8)", [](mem::MemConfig &m) {
              m.l1.numMshrs = 4; } },
        { "2-deep write buf (vs 8)", [](mem::MemConfig &m) {
              m.l1.writeBufferEntries = 2; } },
        { "2 L1 banks (vs 8)", [](mem::MemConfig &m) {
              m.l1.banks = 2; } },
        { "16 L1 banks (vs 8)", [](mem::MemConfig &m) {
              m.l1.banks = 16; } },
        { "L2 latency 24 (vs 12)", [](mem::MemConfig &m) {
              m.l2.hitLatency = 24; } },
    };

    double base[2] = { 0, 0 };
    for (const Variant &v : variants) {
        mem::MemConfig memCfg;
        v.apply(memCfg);
        double mmx = runWith(SimdIsa::Mmx, memCfg);
        double mom = runWith(SimdIsa::Mom, memCfg);
        if (base[0] == 0) {
            base[0] = mmx;
            base[1] = mom;
        }
        std::printf("%-26s | %8.2f | %8.2f   (%+.1f%% / %+.1f%%)\n",
                    v.name, mmx, mom, 100 * (mmx / base[0] - 1),
                    100 * (mom / base[1] - 1));
    }
    std::printf("---------------------------------------------------\n");
    std::printf("(The paper's 8-MSHR / 8-entry / 8-bank choices sit near "
                "the performance knee.)\n");
    return 0;
}
