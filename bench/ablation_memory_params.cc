/**
 * @file
 * Ablation study over the memory-system design choices the paper fixes
 * (Section 3): the 8 MSHRs, the 8-deep coalescing write buffer and the
 * 8-bank L1 organization. Run on the stress configuration (8 threads,
 * conventional hierarchy, both ISAs) where these structures matter
 * most. Registered as `momsim ablation`.
 *
 * Expected: halving MSHRs or the write buffer visibly hurts — the
 * paper's choice sits near the knee; extra banks beyond 8 add little
 * because ports (4/cycle) are the next constraint; MOM is consistently
 * less sensitive than MMX (stream accesses amortize stalls).
 */

#include <cstdio>

#include "svc/bench_registry.hh"

namespace momsim::svc
{

namespace
{

using driver::ExperimentSpec;
using driver::ResultSink;
using driver::SweepGrid;
using driver::SweepVariant;
using isa::SimdIsa;
using mem::MemModel;

SweepVariant
memVariant(const char *name, void (*apply)(mem::MemConfig &))
{
    return { name, [apply](ExperimentSpec &s) { s.tweakMem = apply; } };
}

std::vector<SweepVariant>
ablationVariants()
{
    return {
        memVariant("baseline (paper)", [](mem::MemConfig &) {}),
        memVariant("2 MSHRs (vs 8)", [](mem::MemConfig &m) {
            m.l1.numMshrs = 2; }),
        memVariant("4 MSHRs (vs 8)", [](mem::MemConfig &m) {
            m.l1.numMshrs = 4; }),
        memVariant("2-deep write buf (vs 8)", [](mem::MemConfig &m) {
            m.l1.writeBufferEntries = 2; }),
        memVariant("2 L1 banks (vs 8)", [](mem::MemConfig &m) {
            m.l1.banks = 2; }),
        memVariant("16 L1 banks (vs 8)", [](mem::MemConfig &m) {
            m.l1.banks = 16; }),
        memVariant("L2 latency 24 (vs 12)", [](mem::MemConfig &m) {
            m.l2.hitLatency = 24; }),
    };
}

} // namespace

BenchDef
makeAblationDef()
{
    BenchDef def;
    def.name = "ablation";
    def.oldBinary = "bench_ablation_memory_params";
    def.summary = "Ablation: memory-system parameters at the knee";
    def.grid = [](const driver::BenchOptions &) {
        SweepGrid grid;
        grid.isas({ SimdIsa::Mmx, SimdIsa::Mom })
            .threadCounts({ 8 })
            .memModels({ MemModel::Conventional })
            .variants(ablationVariants());
        return grid;
    };
    def.print = [](driver::BenchHarness &bench, const ResultSink &all) {
        const std::vector<SweepVariant> variants = ablationVariants();
        std::printf("Ablation: memory-system parameters "
                    "(8 threads, conventional)\n");
        bench.perWorkload(all, [&variants](const ResultSink &sink,
                                           const std::string &) {
            std::printf("%-26s | %8s | %8s\n", "configuration",
                        "MMX IPC", "MOM EIPC");
            std::printf("------------------------------------------------"
                        "---\n");

            double base[2] = { 0, 0 };
            for (const SweepVariant &v : variants) {
                double mmx = sink.headlineAt(SimdIsa::Mmx, 8,
                                             MemModel::Conventional,
                                             cpu::FetchPolicy::RoundRobin,
                                             v.label);
                double mom = sink.headlineAt(SimdIsa::Mom, 8,
                                             MemModel::Conventional,
                                             cpu::FetchPolicy::RoundRobin,
                                             v.label);
                if (base[0] == 0) {
                    base[0] = mmx;
                    base[1] = mom;
                }
                std::printf("%-26s | %8.2f | %8.2f   (%+.1f%% / "
                            "%+.1f%%)\n",
                            v.label.c_str(), mmx, mom,
                            100 * (mmx / base[0] - 1),
                            100 * (mom / base[1] - 1));
            }
            std::printf("------------------------------------------------"
                        "---\n");
            std::printf("(The paper's 8-MSHR / 8-entry / 8-bank choices "
                        "sit near the performance knee.)\n");
        });
    };
    return def;
}

} // namespace momsim::svc
