/**
 * @file
 * Reproduces Table 1 by the paper's own procedure: "preliminary
 * simulations in order to determine the number of physical registers
 * and the window sizes necessary to achieve reasonable (near
 * saturation) processor performance for 1, 2, 4 and 8 threads."
 *
 * For each thread count this sweep scales the per-thread window and the
 * rename slack and reports where throughput saturates (within 2% of the
 * largest configuration), alongside the preset the library ships.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace momsim;
using namespace momsim::bench;

int
main()
{
    std::printf("Table 1: near-saturation sizing per thread count "
                "(ideal memory, MMX)\n");
    std::printf("%-8s | %-28s | shipped preset\n", "threads",
                "window/thread sweep (IPC)");
    std::printf("------------------------------------------------------------"
                "--------\n");

    MediaWorkload &wl = paperWorkload();
    for (int threads : { 1, 2, 4, 8 }) {
        double ipcAt[4];
        int windows[4] = { 16, 32, 64, 96 };
        for (int i = 0; i < 4; ++i) {
            CoreConfig cfg = CoreConfig::preset(threads, SimdIsa::Mmx);
            cfg.windowPerThread = windows[i];
            cfg.intPhysRegs = 32 * threads + windows[i];
            cfg.fpPhysRegs = 32 * threads + windows[i] / 2 + 16;
            cfg.simdPhysRegs = 32 * threads + windows[i] / 2 + 16;
            Simulation sim(cfg, MemModel::Perfect,
                           wl.rotation(SimdIsa::Mmx));
            ipcAt[i] = sim.run().ipc;
        }
        int sat = 3;
        for (int i = 0; i < 4; ++i) {
            if (ipcAt[i] >= 0.98 * ipcAt[3]) {
                sat = i;
                break;
            }
        }
        CoreConfig preset = CoreConfig::preset(threads, SimdIsa::Mmx);
        std::printf("%-8d | 16:%4.2f 32:%4.2f 64:%4.2f 96:%4.2f "
                    "(sat @%2d) | win/thr=%d intPR=%d fpPR=%d simdPR=%d\n",
                    threads, ipcAt[0], ipcAt[1], ipcAt[2], ipcAt[3],
                    windows[sat], preset.windowPerThread,
                    preset.intPhysRegs, preset.fpPhysRegs,
                    preset.simdPhysRegs);
    }
    std::printf("------------------------------------------------------------"
                "--------\n");
    std::printf("(The shipped presets are the smallest near-saturation "
                "points, the paper's criterion.)\n");
    return 0;
}
