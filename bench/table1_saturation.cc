/**
 * @file
 * Reproduces Table 1 by the paper's own procedure: "preliminary
 * simulations in order to determine the number of physical registers
 * and the window sizes necessary to achieve reasonable (near
 * saturation) processor performance for 1, 2, 4 and 8 threads".
 * Registered as `momsim table1`.
 *
 * For each thread count this sweep scales the per-thread window and the
 * rename slack and reports where throughput saturates (within 2% of the
 * largest configuration), alongside the preset the library ships.
 */

#include <cstdio>

#include "common/logging.hh"
#include "svc/bench_registry.hh"

namespace momsim::svc
{

namespace
{

using cpu::CoreConfig;
using cpu::FetchPolicy;
using driver::ExperimentSpec;
using driver::ResultSink;
using driver::SweepGrid;
using driver::SweepVariant;
using isa::SimdIsa;
using mem::MemModel;

constexpr int kWindows[4] = { 16, 32, 64, 96 };

SweepVariant
windowVariant(int window)
{
    return { strfmt("win%d", window), [window](ExperimentSpec &s) {
                 s.tweakCore = [window](CoreConfig &cfg) {
                     cfg.windowPerThread = window;
                     cfg.intPhysRegs = 32 * cfg.numThreads + window;
                     cfg.fpPhysRegs =
                         32 * cfg.numThreads + window / 2 + 16;
                     cfg.simdPhysRegs =
                         32 * cfg.numThreads + window / 2 + 16;
                 };
             } };
}

} // namespace

BenchDef
makeTable1Def()
{
    BenchDef def;
    def.name = "table1";
    def.oldBinary = "bench_table1_saturation";
    def.summary = "Table 1: near-saturation sizing per thread count";
    def.grid = [](const driver::BenchOptions &) {
        SweepGrid grid;
        grid.threadCounts({ 1, 2, 4, 8 })
            .memModels({ MemModel::Perfect })
            .variants({ windowVariant(kWindows[0]),
                        windowVariant(kWindows[1]),
                        windowVariant(kWindows[2]),
                        windowVariant(kWindows[3]) });
        return grid;
    };
    def.print = [](driver::BenchHarness &bench, const ResultSink &all) {
        std::printf("Table 1: near-saturation sizing per thread count "
                    "(ideal memory, MMX)\n");
        bench.perWorkload(all, [](const ResultSink &sink,
                                  const std::string &) {
            std::printf("%-8s | %-28s | shipped preset\n", "threads",
                        "window/thread sweep (IPC)");
            std::printf("----------------------------------------------"
                        "----------------------\n");

            for (int threads : { 1, 2, 4, 8 }) {
                double ipcAt[4];
                for (int i = 0; i < 4; ++i) {
                    ipcAt[i] = sink.headlineAt(SimdIsa::Mmx, threads,
                                               MemModel::Perfect,
                                               FetchPolicy::RoundRobin,
                                               strfmt("win%d",
                                                      kWindows[i]));
                }
                int sat = 3;
                for (int i = 0; i < 4; ++i) {
                    if (ipcAt[i] >= 0.98 * ipcAt[3]) {
                        sat = i;
                        break;
                    }
                }
                CoreConfig preset =
                    CoreConfig::preset(threads, SimdIsa::Mmx);
                std::printf("%-8d | 16:%4.2f 32:%4.2f 64:%4.2f 96:%4.2f "
                            "(sat @%2d) | win/thr=%d intPR=%d fpPR=%d "
                            "simdPR=%d\n",
                            threads, ipcAt[0], ipcAt[1], ipcAt[2],
                            ipcAt[3], kWindows[sat],
                            preset.windowPerThread, preset.intPhysRegs,
                            preset.fpPhysRegs, preset.simdPhysRegs);
            }
            std::printf("----------------------------------------------"
                        "----------------------\n");
            std::printf("(The shipped presets are the smallest "
                        "near-saturation points, the paper's "
                        "criterion.)\n");
        });
    };
    return def;
}

} // namespace momsim::svc
