/**
 * @file
 * Reproduces Figure 8: fetch policies under the decoupled cache
 * hierarchy (scalar ports into the L1, vector ports straight into the
 * banked L2 with exclusive-bit coherence).
 *
 * Expected shape (paper): decoupling solves the cache-degradation
 * problem — 8 threads now beats 4; the fetch policies barely help
 * SMT+MMX but give up to ~7% for SMT+MOM.
 */

#include <cstdio>

#include "bench/policy_table.hh"

using namespace momsim;
using driver::BenchHarness;
using driver::ResultSink;
using mem::MemModel;

int
main(int argc, char **argv)
{
    BenchHarness bench(argc, argv, "fig8");
    ResultSink all = bench.run(bench::policyGrid(MemModel::Decoupled));

    std::printf("Figure 8: fetch policies, decoupled hierarchy\n");
    bench.perWorkload(all, [](const ResultSink &sink,
                              const std::string &) {
        double rr[2][4];
        bench::printPolicyTable(sink, MemModel::Decoupled, rr);
        // rr[isa][thrIdx]: thread counts 1, 2, 4, 8 => indices 0..3.
        std::printf("8thr > 4thr with decoupling (paper: yes): MMX %s, "
                    "MOM %s\n",
                    rr[0][3] > rr[0][2] ? "yes" : "NO",
                    rr[1][3] > rr[1][2] ? "yes" : "NO");
    });
    return 0;
}
