/**
 * @file
 * Reproduces Figure 8: fetch policies under the decoupled cache
 * hierarchy (scalar ports into the L1, vector ports straight into the
 * banked L2 with exclusive-bit coherence). Registered as `momsim fig8`.
 *
 * Expected shape (paper): decoupling solves the cache-degradation
 * problem — 8 threads now beats 4; the fetch policies barely help
 * SMT+MMX but give up to ~7% for SMT+MOM.
 */

#include <cstdio>

#include "bench/policy_table.hh"
#include "svc/bench_registry.hh"

namespace momsim::svc
{

BenchDef
makeFig8Def()
{
    BenchDef def;
    def.name = "fig8";
    def.oldBinary = "bench_fig8_fetch_decoupled";
    def.summary = "Figure 8: fetch policies, decoupled hierarchy";
    def.grid = [](const driver::BenchOptions &) {
        return bench::policyGrid(mem::MemModel::Decoupled);
    };
    def.print = [](driver::BenchHarness &bench,
                   const driver::ResultSink &all) {
        std::printf("Figure 8: fetch policies, decoupled hierarchy\n");
        bench.perWorkload(all, [](const driver::ResultSink &sink,
                                  const std::string &) {
            double rr[2][4];
            bench::printPolicyTable(sink, mem::MemModel::Decoupled, rr);
            // rr[isa][thrIdx]: thread counts 1, 2, 4, 8 => indices 0..3.
            std::printf("8thr > 4thr with decoupling (paper: yes): "
                        "MMX %s, MOM %s\n",
                        rr[0][3] > rr[0][2] ? "yes" : "NO",
                        rr[1][3] > rr[1][2] ? "yes" : "NO");
        });
    };
    return def;
}

} // namespace momsim::svc
