/**
 * @file
 * Reproduces Figure 8: fetch policies under the decoupled cache
 * hierarchy (scalar ports into the L1, vector ports straight into the
 * banked L2 with exclusive-bit coherence).
 *
 * Expected shape (paper): decoupling solves the cache-degradation
 * problem — 8 threads now beats 4; the fetch policies barely help
 * SMT+MMX but give up to ~7% for SMT+MOM.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace momsim;
using namespace momsim::bench;

int
main()
{
    std::printf("Figure 8: fetch policies, decoupled hierarchy\n");
    std::printf("%-6s %-8s | %8s %8s %8s %8s | best vs RR\n", "isa",
                "threads", "RR", "IC", "OC", "BL");
    std::printf("------------------------------------------------------"
                "--------\n");
    double perf4[2] = { 0, 0 }, perf8[2] = { 0, 0 };
    int isaIdx = 0;
    for (SimdIsa simd : { SimdIsa::Mmx, SimdIsa::Mom }) {
        for (int threads : { 1, 2, 4, 8 }) {
            double v[4];
            int i = 0;
            for (FetchPolicy pol : { FetchPolicy::RoundRobin,
                                     FetchPolicy::ICount,
                                     FetchPolicy::OCount,
                                     FetchPolicy::Balance }) {
                if (simd == SimdIsa::Mmx && pol == FetchPolicy::OCount) {
                    v[i++] = 0.0;
                    continue;
                }
                RunResult r = runPoint(simd, threads, MemModel::Decoupled,
                                       pol);
                v[i++] = perf(r, simd);
            }
            if (threads == 4)
                perf4[isaIdx] = v[0];
            if (threads == 8)
                perf8[isaIdx] = v[0];
            double best = std::max({ v[1], v[2], v[3] });
            std::printf("%-6s %-8d | %8.2f %8.2f %8.2f %8.2f | +%.1f%%\n",
                        toString(simd), threads, v[0], v[1], v[2], v[3],
                        100 * (best / v[0] - 1.0));
        }
        ++isaIdx;
    }
    std::printf("------------------------------------------------------"
                "--------\n");
    std::printf("8thr > 4thr with decoupling (paper: yes): MMX %s, "
                "MOM %s\n",
                perf8[0] > perf4[0] ? "yes" : "NO",
                perf8[1] > perf4[1] ? "yes" : "NO");
    return 0;
}
