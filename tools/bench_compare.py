#!/usr/bin/env python3
"""Compare two `momsim sim_throughput --json` snapshots.

Rows are matched by their stable sweep-point "id"; the tracked metric is
the self-measured simulation throughput ("sim_kcps", simulated kilocycles
per wall-clock second).  The script prints a before/after table and fails
(exit 1) when the geometric-mean ratio new/old across matched rows drops
below --min-ratio (default 0.9, i.e. a >10% regression).

Stdlib only — CI runs it with whatever python3 the runner image ships.

Usage:
    bench_compare.py OLD.json NEW.json [--min-ratio 0.9] [--metric sim_kcps]

Exit codes:
    0  geomean(new/old) >= min-ratio (or nothing comparable — see below)
    1  geomean(new/old) <  min-ratio
    2  bad invocation / unreadable input

A missing or empty OLD file is not an error: the first CI run on a fresh
cache has no baseline yet, and the step must seed one rather than fail.
Rows present on only one side are reported but excluded from the geomean.
"""

import argparse
import json
import math
import os
import sys


def load_rows(path, metric):
    """Return {id: metric} for one snapshot, {} if the file is absent."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        rows = json.load(fh)
    if not isinstance(rows, list):
        raise ValueError("%s: expected a JSON array of rows" % path)
    out = {}
    for row in rows:
        rid = row.get("id")
        val = row.get(metric)
        if rid is None or val is None:
            raise ValueError(
                "%s: row missing \"id\" or \"%s\": %r" % (path, metric, row)
            )
        if rid in out:
            raise ValueError("%s: duplicate row id %r" % (path, rid))
        out[rid] = float(val)
    return out


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two sim_throughput JSON snapshots by row id."
    )
    parser.add_argument("old", help="baseline snapshot (may not exist yet)")
    parser.add_argument("new", help="freshly measured snapshot")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.9,
        help="fail when geomean(new/old) is below this (default: 0.9)",
    )
    parser.add_argument(
        "--metric",
        default="sim_kcps",
        help="per-row field to compare (default: sim_kcps)",
    )
    args = parser.parse_args(argv)

    # The baseline is best-effort by design: the first CI run has none,
    # and a cache that went stale or corrupt (schema change, truncated
    # upload) must seed a fresh one, not wedge the pipeline. Only a bad
    # NEW snapshot — the thing this very run just produced — is an error.
    try:
        old = load_rows(args.old, args.metric)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(
            "bench_compare: no usable baseline snapshot at %s (%s) -- "
            "nothing to compare, treating %s as the new baseline"
            % (args.old, err, args.new)
        )
        return 0

    try:
        new = load_rows(args.new, args.metric)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print("bench_compare: %s" % err, file=sys.stderr)
        return 2

    if not old:
        print(
            "bench_compare: no baseline snapshot at %s -- nothing to "
            "compare, treating %s as the new baseline" % (args.old, args.new)
        )
        return 0
    if not new:
        print("bench_compare: %s is missing or empty" % args.new, file=sys.stderr)
        return 2

    common = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    width = max([len(rid) for rid in common + only_old + only_new] + [len("id")])
    print(
        "%-*s  %12s  %12s  %7s"
        % (width, "id", "old " + args.metric, "new " + args.metric, "ratio")
    )
    print("-" * (width + 2 + 12 + 2 + 12 + 2 + 7))
    ratios = []
    for rid in common:
        ratio = new[rid] / old[rid]
        ratios.append(ratio)
        print(
            "%-*s  %12.2f  %12.2f  %6.3fx" % (width, rid, old[rid], new[rid], ratio)
        )
    for rid in only_old:
        print("%-*s  %12.2f  %12s  %7s" % (width, rid, old[rid], "-", "gone"))
    for rid in only_new:
        print("%-*s  %12s  %12.2f  %7s" % (width, rid, "-", new[rid], "new"))

    if not common:
        print("bench_compare: no overlapping row ids -- sweep was renamed?")
        return 0

    gm = geomean(ratios)
    print("-" * (width + 2 + 12 + 2 + 12 + 2 + 7))
    print(
        "%-*s  %12s  %12s  %6.3fx  (min allowed: %.3fx)"
        % (width, "geomean (%d rows)" % len(common), "", "", gm, args.min_ratio)
    )
    if gm < args.min_ratio:
        print(
            "bench_compare: FAIL -- geomean %.3fx is below %.3fx"
            % (gm, args.min_ratio),
            file=sys.stderr,
        )
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
