#!/usr/bin/env python3
"""momlint — momsim's repo-specific determinism linter.

The repo's tests pin byte-identical output (result rows, service
responses, fabric frames), so whole bug classes that are "style" in
other codebases are correctness bugs here. momlint encodes the ones a
generic linter cannot know about:

  unordered-iter   Iterating an unordered container (range-for or
                   .begin()) in a serialization/emit/response path.
                   Hash order is libstdc++-version- and seed-dependent;
                   anything emitted from it is a nondeterministic byte.

  float-format     A floating-point printf conversion other than the
                   canonical %.17g (exactNum) in an emit path. %.17g is
                   the shortest format that round-trips every double;
                   anything else silently quantizes stored results.

  nondet-source    Wall clocks, rand()/srand(), or random_device inside
                   the simulator core (src/cpu, src/mem, src/core).
                   Simulation state must be a pure function of the
                   request (seeds come from SplitMix64 on the point id).

  schema-lock      The serialized field list of ResultRow / the service
                   protocol / the fabric protocol changed without a
                   schemaVersion bump. Field lists are fingerprinted in
                   tests/schema.lock; regenerate with
                   --update-schema-lock *after* bumping the version
                   constant.

Waivers: a finding is suppressed by a comment on the same line as the
flagged construct, or in the comment block directly above it:

    // momlint: allow(<rule>) <reason>

The reason is required — a waiver documents why the site is safe.

Exit status: 0 clean, 1 findings, 2 usage or internal error.
"""

import argparse
import hashlib
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# --------------------------------------------------------------------------
# Path sets
# --------------------------------------------------------------------------

# Serialization/emit/response paths: everything whose output a client or
# a stored file sees. CLI entry points (*_main.cc) are excluded — their
# printf tables are human-facing reports, not wire or store bytes.
EMIT_DIRS = ("src/svc", "src/fabric")
EMIT_FILES = (
    "src/driver/result_store.cc",
    "src/driver/result_store.hh",
    "src/driver/result_sink.cc",
    "src/driver/result_sink.hh",
)

# The simulator core: state evolution must be a pure function of the
# request, so no ambient entropy of any kind.
CORE_DIRS = ("src/cpu", "src/mem", "src/core")

CXX_EXTS = (".cc", ".hh")


def is_emit_path(rel):
    if os.path.basename(rel).endswith("_main.cc"):
        return False
    if rel in EMIT_FILES:
        return True
    return any(rel.startswith(d + "/") for d in EMIT_DIRS)


def is_core_path(rel):
    return any(rel.startswith(d + "/") for d in CORE_DIRS)


def cxx_files(root, rel_filter):
    out = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "src")):
        for name in sorted(filenames):
            if not name.endswith(CXX_EXTS):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            rel = rel.replace(os.sep, "/")
            if rel_filter(rel):
                out.append(rel)
    return sorted(out)


# --------------------------------------------------------------------------
# Source model: lines, waivers, comment stripping
# --------------------------------------------------------------------------

WAIVER_RE = re.compile(r"//\s*momlint:\s*allow\(([a-z-]+)\)\s*(\S.*)?$")


class Source:
    """One C++ file: raw lines, waiver map, comment-stripped lines.

    Waivers are collected from the raw text (they live in comments),
    then comments are stripped so rule regexes never fire on prose
    like "CSV %.6g" in a doc block.
    """

    def __init__(self, path, text):
        self.path = path
        self.lines = text.split("\n")
        # waivers[line] = set of rule names waived on that line
        self.waivers = {}
        for i, line in enumerate(self.lines, 1):
            m = WAIVER_RE.search(line)
            if not m:
                continue
            rule, reason = m.group(1), m.group(2)
            if not reason:
                # A reasonless waiver is itself a finding (reported by
                # the caller); record it with a sentinel rule name.
                self.waivers.setdefault(i, set()).add("!no-reason:" + rule)
                continue
            self.waivers.setdefault(i, set()).add(rule)
        self.code = strip_comments(text).split("\n")
        # A waiver on a pure-comment line also covers the next line
        # that carries code — so multi-line waiver comments work.
        for i in sorted(self.waivers):
            if self.code[i - 1].strip():
                continue
            for j in range(i, len(self.code)):
                if self.code[j].strip():
                    self.waivers.setdefault(j + 1, set()).update(
                        self.waivers[i])
                    break

    def waived(self, rule, line):
        return rule in self.waivers.get(line, ())

    def reasonless(self):
        out = []
        for line, rules in sorted(self.waivers.items()):
            for r in sorted(rules):
                if r.startswith("!no-reason:"):
                    out.append((line, r.split(":", 1)[1]))
        return out


def strip_comments(text):
    """Remove // and /* */ comments, preserving line structure and
    string literals (a quoted "//" is not a comment)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif c == quote:
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


# --------------------------------------------------------------------------
# Rule: unordered-iter
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")


def unordered_names(code_text):
    """Names of variables declared with an unordered container type in
    this file (template args bracket-matched, references included)."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code_text):
        i = code_text.index("<", m.start())
        depth = 0
        while i < len(code_text):
            if code_text[i] == "<":
                depth += 1
            elif code_text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        else:
            continue
        tail = code_text[i + 1:i + 200]
        dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)", tail)
        if dm and dm.group(1) not in ("const",):
            names.add(dm.group(1))
    return names


def rule_unordered_iter(src):
    findings = []
    names = unordered_names("\n".join(src.code))
    if not names:
        return findings
    alt = "|".join(re.escape(n) for n in sorted(names))
    range_for = re.compile(r"for\s*\([^;()]*:\s*[&*]?\s*(%s)\b" % alt)
    begin = re.compile(r"\b(%s)\s*(?:\.|->)\s*c?begin\s*\(" % alt)
    for i, line in enumerate(src.code, 1):
        for rex, what in ((range_for, "range-for over"),
                          (begin, ".begin() on")):
            m = rex.search(line)
            if m and not src.waived("unordered-iter", i):
                findings.append(Finding(
                    "unordered-iter", src.path, i,
                    "%s unordered container \"%s\" in an emit path; "
                    "hash order is not deterministic — iterate a sorted "
                    "key list instead" % (what, m.group(1))))
    return findings


# --------------------------------------------------------------------------
# Rule: float-format
# --------------------------------------------------------------------------

FLOAT_FMT_RE = re.compile(r"%[-+ #0-9.*']*[eEfgG]")
CANONICAL = "%.17g"


def rule_float_format(src):
    findings = []
    for i, line in enumerate(src.code, 1):
        if '"' not in line:
            continue
        for m in FLOAT_FMT_RE.finditer(line):
            if m.group(0) == CANONICAL:
                continue
            if src.waived("float-format", i):
                continue
            findings.append(Finding(
                "float-format", src.path, i,
                "float format \"%s\" in an emit path; only the "
                "canonical %s (exactNum) round-trips doubles "
                "byte-exactly" % (m.group(0), CANONICAL)))
    return findings


# --------------------------------------------------------------------------
# Rule: nondet-source
# --------------------------------------------------------------------------

NONDET_PATTERNS = (
    (re.compile(r"\b(?:steady|system|high_resolution)_clock\b"),
     "wall-clock read"),
    (re.compile(r"\bgettimeofday\s*\("), "wall-clock read"),
    (re.compile(r"\bclock_gettime\s*\("), "wall-clock read"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "wall-clock read"),
    (re.compile(r"\bs?rand\s*\("), "libc PRNG"),
    (re.compile(r"\brandom_device\b"), "hardware entropy source"),
)


def rule_nondet_source(src):
    findings = []
    for i, line in enumerate(src.code, 1):
        for rex, what in NONDET_PATTERNS:
            m = rex.search(line)
            if m and not src.waived("nondet-source", i):
                findings.append(Finding(
                    "nondet-source", src.path, i,
                    "%s (\"%s\") in the simulator core; results must be "
                    "a pure function of the request — derive entropy "
                    "from the point seed" % (what, m.group(0).strip())))
    return findings


# --------------------------------------------------------------------------
# Rule: schema-lock
# --------------------------------------------------------------------------

# Each unit pairs the source file whose string literals define the
# serialized field names with the header holding its version constant.
SCHEMA_UNITS = (
    ("result_row", "src/driver/result_store.cc",
     "src/driver/result_store.hh", "kResultSchemaVersion"),
    ("sim_request", "src/svc/sim_request.cc",
     "src/svc/sim_request.hh", "kSimRequestSchemaVersion"),
    ("sim_response", "src/svc/sim_response.cc",
     "src/svc/sim_response.hh", "kSimResponseSchemaVersion"),
    ("fabric_protocol", "src/fabric/protocol.cc",
     "src/fabric/protocol.hh", "kFabricSchemaVersion"),
)

# A serialized field name as it appears in C++ source: \"name\":
FIELD_RE = re.compile(r'\\"([A-Za-z_]\w*)\\":')
LOCK_LINE_RE = re.compile(
    r"^(\w+)\s+version=(\d+)\s+sha256=([0-9a-f]{12})\s+fields=(\S+)$")


def schema_snapshot(root, units=SCHEMA_UNITS):
    """Compute (unit, version, digest, fields) for every schema unit."""
    snap = []
    for unit, cc, hh, const in units:
        cc_text = read_file(os.path.join(root, cc))
        hh_text = read_file(os.path.join(root, hh))
        vm = re.search(
            r"constexpr\s+int\s+%s\s*=\s*(\d+)" % re.escape(const), hh_text)
        if not vm:
            raise LintError("%s: version constant %s not found" % (hh, const))
        fields = sorted(set(FIELD_RE.findall(cc_text)))
        if not fields:
            raise LintError("%s: no serialized fields found" % cc)
        version = int(vm.group(1))
        digest = hashlib.sha256(
            ("%d:%s" % (version, ",".join(fields))).encode()).hexdigest()[:12]
        snap.append((unit, version, digest, fields))
    return snap


def render_lock(snap):
    out = ["# momsim schema lock — generated by tools/momlint.py",
           "# After bumping a schemaVersion constant, regenerate with:",
           "#   tools/momlint.py --update-schema-lock"]
    for unit, version, digest, fields in snap:
        out.append("%s version=%d sha256=%s fields=%s"
                   % (unit, version, digest, ",".join(fields)))
    return "\n".join(out) + "\n"


def parse_lock(text, path):
    locked = {}
    for i, line in enumerate(text.split("\n"), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = LOCK_LINE_RE.match(line)
        if not m:
            raise LintError("%s:%d: unparseable lock line" % (path, i))
        locked[m.group(1)] = (int(m.group(2)), m.group(3),
                              m.group(4).split(","))
    return locked


def rule_schema_lock(root, lock_path, units=SCHEMA_UNITS):
    findings = []
    snap = schema_snapshot(root, units)
    full = os.path.join(root, lock_path)
    if not os.path.exists(full):
        findings.append(Finding(
            "schema-lock", lock_path, 1,
            "missing; run tools/momlint.py --update-schema-lock"))
        return findings
    locked = parse_lock(read_file(full), lock_path)
    for unit, version, digest, fields in snap:
        if unit not in locked:
            findings.append(Finding(
                "schema-lock", lock_path, 1,
                "unit \"%s\" not in lock; run --update-schema-lock"
                % unit))
            continue
        lver, _ldig, lfields = locked[unit]
        if fields != lfields and version == lver:
            added = sorted(set(fields) - set(lfields))
            removed = sorted(set(lfields) - set(fields))
            delta = []
            if added:
                delta.append("added: " + ", ".join(added))
            if removed:
                delta.append("removed: " + ", ".join(removed))
            findings.append(Finding(
                "schema-lock", lock_path, 1,
                "unit \"%s\" serialized fields changed (%s) without a "
                "schemaVersion bump; old readers would misparse the new "
                "bytes — bump the version constant, then run "
                "--update-schema-lock" % (unit, "; ".join(delta))))
        elif version != lver:
            findings.append(Finding(
                "schema-lock", lock_path, 1,
                "unit \"%s\" is version %d but the lock records %d; "
                "run --update-schema-lock to re-fingerprint"
                % (unit, version, lver)))
    for unit in sorted(set(locked) - {u for u, _v, _d, _f in snap}):
        findings.append(Finding(
            "schema-lock", lock_path, 1,
            "unit \"%s\" in lock no longer exists; run "
            "--update-schema-lock" % unit))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

class LintError(Exception):
    pass


def read_file(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def load_source(root, rel):
    return Source(rel, read_file(os.path.join(root, rel)))


def lint_repo(root):
    findings = []
    sources = {}

    def source(rel):
        if rel not in sources:
            sources[rel] = load_source(root, rel)
        return sources[rel]

    for rel in cxx_files(root, is_emit_path):
        src = source(rel)
        findings += rule_unordered_iter(src)
        findings += rule_float_format(src)
    for rel in cxx_files(root, is_core_path):
        findings += rule_nondet_source(source(rel))
    findings += rule_schema_lock(root, "tests/schema.lock")

    for src in sources.values():
        for line, rule in src.reasonless():
            findings.append(Finding(
                rule, src.path, line,
                "waiver without a reason; write "
                "\"// momlint: allow(%s) <why this site is safe>\""
                % rule))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# --------------------------------------------------------------------------
# Selftest over tests/lint_fixtures/
# --------------------------------------------------------------------------

RULE_FNS = {
    "unordered_iter": rule_unordered_iter,
    "float_format": rule_float_format,
    "nondet_source": rule_nondet_source,
}


def selftest(root):
    fixtures = os.path.join(root, "tests", "lint_fixtures")
    failures = []
    checked = 0

    for stem, fn in sorted(RULE_FNS.items()):
        rule = stem.replace("_", "-")
        for kind, want_hits in (("flag", True), ("pass", False)):
            rel = "tests/lint_fixtures/%s_%s.cc" % (stem, kind)
            path = os.path.join(root, rel)
            if not os.path.exists(path):
                failures.append("%s: fixture missing" % rel)
                continue
            checked += 1
            got = [f for f in fn(Source(rel, read_file(path)))
                   if f.rule == rule]
            if want_hits and not got:
                failures.append("%s: expected >=1 %s finding, got none"
                                % (rel, rule))
            elif not want_hits and got:
                failures.append("%s: expected no %s findings, got:\n  %s"
                                % (rel, rule,
                                   "\n  ".join(str(f) for f in got)))

    mini_units = (("mini", "mini.cc", "mini.hh", "kMiniSchemaVersion"),)
    for kind, want_hits in (("flag", True), ("pass", False)):
        rel = "tests/lint_fixtures/schema_%s" % kind
        fxroot = os.path.join(fixtures, "schema_%s" % kind)
        if not os.path.isdir(fxroot):
            failures.append("%s/: fixture dir missing" % rel)
            continue
        checked += 1
        got = rule_schema_lock(fxroot, "schema.lock", mini_units)
        if want_hits and not got:
            failures.append("%s/: expected a schema-lock finding, got none"
                            % rel)
        elif not want_hits and got:
            failures.append("%s/: expected clean, got:\n  %s"
                            % (rel, "\n  ".join(str(f) for f in got)))

    if failures:
        for f in failures:
            print("selftest FAIL: %s" % f, file=sys.stderr)
        return 1
    print("momlint selftest: %d fixture checks passed" % checked)
    return 0


def main(argv):
    p = argparse.ArgumentParser(
        prog="momlint.py",
        description="momsim determinism linter (see file docstring)")
    p.add_argument("--repo", default=REPO,
                   help="repository root (default: the checkout holding "
                        "this script)")
    p.add_argument("--update-schema-lock", action="store_true",
                   help="rewrite tests/schema.lock from the current "
                        "serializers and exit")
    p.add_argument("--selftest", action="store_true",
                   help="run the rules against tests/lint_fixtures/")
    args = p.parse_args(argv)

    try:
        if args.selftest:
            return selftest(args.repo)
        if args.update_schema_lock:
            lock = os.path.join(args.repo, "tests", "schema.lock")
            with open(lock, "w", encoding="utf-8") as f:
                f.write(render_lock(schema_snapshot(args.repo)))
            print("wrote %s" % lock)
            return 0
        findings = lint_repo(args.repo)
    except LintError as e:
        print("momlint: error: %s" % e, file=sys.stderr)
        return 2
    for f in findings:
        print(f)
    if findings:
        print("momlint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("momlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
