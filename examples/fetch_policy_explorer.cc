/**
 * @file
 * Thin wrapper keeping the example_fetch_policy_explorer binary name
 * alive: the explorer itself is a registered bench (bench/explorer.cc)
 * and `momsim explorer` is the primary spelling. This wrapper shows
 * how an external binary embeds a registry entry — no hand-rolled
 * flag/positional splitting (BenchOptions::parseInto's positional mode
 * does it), no bespoke main() logic.
 *
 *   $ ./example_fetch_policy_explorer [--quick] [--jobs N] \
 *         [mmx|mom] [threads] [perfect|conventional|decoupled] \
 *         [rr|ic|oc|bl]
 */

#include <cstdio>

#include "svc/bench_registry.hh"

int
main(int argc, char **argv)
{
    const momsim::svc::BenchDef *def = momsim::svc::findBench("explorer");
    if (!def) {
        std::fprintf(stderr, "explorer is not registered\n");
        return 1;
    }
    return momsim::svc::runBench(*def, argc, argv);
}
