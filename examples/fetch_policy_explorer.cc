/**
 * @file
 * Interactive-style configuration explorer: run any combination of ISA,
 * thread count, memory model and fetch policy over the full workload.
 *
 *   $ ./example_fetch_policy_explorer [--quick] [--jobs N] \
 *         [--cache-dir DIR] [--shard I/N] [--merge FILES] [--dry-run] \
 *         [mmx|mom] [threads] [perfect|conventional|decoupled] \
 *         [rr|ic|oc|bl]
 *
 * With no positional arguments, sweeps the fetch policies at 8 threads
 * on the decoupled MOM machine through the threaded experiment runner.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "driver/bench_harness.hh"

using namespace momsim;
using driver::BenchHarness;
using driver::BenchOptions;
using driver::ResultRow;
using driver::ResultSink;
using driver::SweepGrid;

namespace
{

cpu::FetchPolicy
parsePolicy(const char *str)
{
    if (std::strcmp(str, "ic") == 0)
        return cpu::FetchPolicy::ICount;
    if (std::strcmp(str, "oc") == 0)
        return cpu::FetchPolicy::OCount;
    if (std::strcmp(str, "bl") == 0)
        return cpu::FetchPolicy::Balance;
    return cpu::FetchPolicy::RoundRobin;
}

mem::MemModel
parseMem(const char *str)
{
    if (std::strcmp(str, "perfect") == 0)
        return mem::MemModel::Perfect;
    if (std::strcmp(str, "decoupled") == 0)
        return mem::MemModel::Decoupled;
    return mem::MemModel::Conventional;
}

void
printRow(const ResultRow &r)
{
    std::printf("%s x%d %-12s %-3s | IPC %5.2f  EIPC %5.2f | L1 %5.1f%% "
                "lat %5.2f | IC %5.1f%%\n",
                isa::toString(r.simd), r.threads, toString(r.memModel),
                toString(r.policy), r.run.ipc, r.run.eipc,
                100 * r.run.l1HitRate, r.run.l1AvgLatency,
                100 * r.run.icacheHitRate);
}

} // namespace

int
main(int argc, char **argv)
{
    // Split harness flags ("--...") from the positional point spec.
    std::vector<char *> flagArgs { argv[0] };
    std::vector<char *> positional;
    for (int i = 1; i < argc; ++i) {
        // Only "--..." and the short flag aliases are harness flags;
        // other "-"-prefixed tokens (e.g. a negative thread count)
        // stay positional.
        bool isFlag = std::strncmp(argv[i], "--", 2) == 0 ||
                      std::strcmp(argv[i], "-j") == 0 ||
                      std::strcmp(argv[i], "-h") == 0;
        if (isFlag) {
            flagArgs.push_back(argv[i]);
            // Flags taking a value consume the next token too.
            if (BenchOptions::takesValue(argv[i]) && i + 1 < argc)
                flagArgs.push_back(argv[++i]);
        } else {
            positional.push_back(argv[i]);
        }
    }
    BenchHarness bench(static_cast<int>(flagArgs.size()),
                       flagArgs.data(), "explorer");

    if (positional.size() >= 4) {
        SweepGrid grid;
        int threads = std::atoi(positional[1]);
        if (threads < 1 || threads > 8)
            threads = 8;
        grid.isas({ std::strcmp(positional[0], "mom") == 0
                        ? isa::SimdIsa::Mom
                        : isa::SimdIsa::Mmx })
            .threadCounts({ threads })
            .memModels({ parseMem(positional[2]) })
            .policies({ parsePolicy(positional[3]) });
        ResultSink sink = bench.run(grid);
        if (sink.empty()) {
            // Under --shard the single point may belong to another
            // shard; nothing of ours to print.
            std::printf("(point assigned to another shard)\n");
            return 0;
        }
        // One row per selected --workload (a single one by default).
        for (const ResultRow &r : sink.rows())
            printRow(r);
        return 0;
    }

    std::printf("sweeping fetch policies (MOM, 8 threads, decoupled):\n");
    SweepGrid grid;
    grid.isas({ isa::SimdIsa::Mom })
        .threadCounts({ 8 })
        .memModels({ mem::MemModel::Decoupled })
        .policies({ cpu::FetchPolicy::RoundRobin, cpu::FetchPolicy::ICount,
                    cpu::FetchPolicy::OCount, cpu::FetchPolicy::Balance });
    ResultSink all = bench.run(grid);
    bench.perWorkload(all, [](const ResultSink &sink,
                              const std::string &) {
        for (const ResultRow &r : sink.rows())
            printRow(r);

        std::vector<double> headlines;
        for (const ResultRow &r : sink.rows())
            headlines.push_back(r.headline);
        std::printf("geomean %s across policies: %.2f\n",
                    ResultSink::headlineName(isa::SimdIsa::Mom),
                    ResultSink::geomean(headlines));
    });
    return 0;
}
