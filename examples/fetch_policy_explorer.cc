/**
 * @file
 * Interactive-style configuration explorer: run any combination of ISA,
 * thread count, memory model and fetch policy over the full workload.
 *
 *   $ ./example_fetch_policy_explorer [mmx|mom] [threads] \
 *         [perfect|conventional|decoupled] [rr|ic|oc|bl]
 *
 * With no arguments, sweeps fetch policies at 8 threads on the
 * decoupled MOM machine.
 */

#include <cstdio>
#include <cstring>

#include "core/simulation.hh"
#include "workloads/media_workload.hh"

using namespace momsim;
using workloads::MediaWorkload;
using workloads::WorkloadScale;

namespace
{

cpu::FetchPolicy
parsePolicy(const char *str)
{
    if (std::strcmp(str, "ic") == 0)
        return cpu::FetchPolicy::ICount;
    if (std::strcmp(str, "oc") == 0)
        return cpu::FetchPolicy::OCount;
    if (std::strcmp(str, "bl") == 0)
        return cpu::FetchPolicy::Balance;
    return cpu::FetchPolicy::RoundRobin;
}

mem::MemModel
parseMem(const char *str)
{
    if (std::strcmp(str, "perfect") == 0)
        return mem::MemModel::Perfect;
    if (std::strcmp(str, "decoupled") == 0)
        return mem::MemModel::Decoupled;
    return mem::MemModel::Conventional;
}

void
runOne(MediaWorkload &wl, isa::SimdIsa simd, int threads,
       mem::MemModel memModel, cpu::FetchPolicy pol)
{
    cpu::CoreConfig cfg = cpu::CoreConfig::preset(threads, simd, pol);
    core::Simulation sim(cfg, memModel, wl.rotation(simd));
    core::RunResult res = sim.run();
    std::printf("%s x%d %-12s %-3s | IPC %5.2f  EIPC %5.2f | L1 %5.1f%% "
                "lat %5.2f | IC %5.1f%%\n",
                isa::toString(simd), threads, toString(memModel),
                toString(pol), res.ipc, res.eipc, 100 * res.l1HitRate,
                res.l1AvgLatency, 100 * res.icacheHitRate);
}

} // namespace

int
main(int argc, char **argv)
{
    auto wl = MediaWorkload::build(WorkloadScale::Paper);

    if (argc >= 5) {
        isa::SimdIsa simd = std::strcmp(argv[1], "mom") == 0
            ? isa::SimdIsa::Mom : isa::SimdIsa::Mmx;
        int threads = std::atoi(argv[2]);
        if (threads < 1 || threads > 8)
            threads = 8;
        runOne(*wl, simd, threads, parseMem(argv[3]),
               parsePolicy(argv[4]));
        return 0;
    }

    std::printf("sweeping fetch policies (MOM, 8 threads, decoupled):\n");
    for (cpu::FetchPolicy pol : { cpu::FetchPolicy::RoundRobin,
                                  cpu::FetchPolicy::ICount,
                                  cpu::FetchPolicy::OCount,
                                  cpu::FetchPolicy::Balance }) {
        runOne(*wl, isa::SimdIsa::Mom, 8, mem::MemModel::Decoupled, pol);
    }
    return 0;
}
