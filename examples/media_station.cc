/**
 * @file
 * The paper's scenario end-to-end: a "media station" running the full
 * MPEG-4-profile multiprogrammed mix (MPEG-2, JPEG, GSM, mesa) on an
 * 8-thread SMT processor, comparing the MMX and MOM machines on the
 * decoupled hierarchy with their best fetch policies.
 *
 *   $ ./example_media_station
 */

#include <cstdio>

#include "core/simulation.hh"
#include "workloads/media_workload.hh"

using namespace momsim;
using workloads::MediaWorkload;
using workloads::WorkloadScale;

int
main()
{
    std::printf("building the 8-program MPEG-4-style workload...\n");
    auto wl = MediaWorkload::build(WorkloadScale::Paper);

    for (isa::SimdIsa simd : { isa::SimdIsa::Mmx, isa::SimdIsa::Mom }) {
        cpu::FetchPolicy pol = simd == isa::SimdIsa::Mmx
            ? cpu::FetchPolicy::ICount : cpu::FetchPolicy::OCount;
        cpu::CoreConfig cfg = cpu::CoreConfig::preset(8, simd, pol);
        core::Simulation sim(cfg, mem::MemModel::Decoupled,
                             wl->rotation(simd));
        core::RunResult res = sim.run();
        std::printf("\nSMT+%s, 8 threads, decoupled hierarchy, %s "
                    "fetch:\n", isa::toString(simd), toString(pol));
        std::printf("  cycles: %llu   completions: %d\n",
                    static_cast<unsigned long long>(res.cycles),
                    res.completions);
        std::printf("  IPC %.2f   EIPC %.2f\n", res.ipc, res.eipc);
        std::printf("  I-cache hit %.1f%%   L1 hit %.1f%%   L1 latency "
                    "%.2f cyc\n", 100 * res.icacheHitRate,
                    100 * res.l1HitRate, res.l1AvgLatency);
        std::printf("  branch mispredicts: %llu / %llu cond branches\n",
                    static_cast<unsigned long long>(res.mispredicts),
                    static_cast<unsigned long long>(res.condBranches));
    }
    return 0;
}
