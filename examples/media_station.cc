/**
 * @file
 * The paper's scenario end-to-end, now through the service API: a
 * "media station" running the full MPEG-4-profile multiprogrammed mix
 * (MPEG-2, JPEG, GSM, mesa) on an 8-thread SMT processor, comparing
 * the MMX and MOM machines on the decoupled hierarchy with their best
 * fetch policies.
 *
 * This is the embedding example for SimService: build SimRequests in
 * code (or parse them from JSON — the same wire format `momsim batch`
 * serves), submit them to an in-process service, and read structured
 * SimResponses back. No exit() paths, no CLI plumbing; errors would
 * come back as (code, message) pairs.
 *
 *   $ ./example_media_station [--quick]
 */

#include <cstdio>
#include <cstring>

#include "svc/sim_service.hh"

using namespace momsim;
using svc::SimRequest;
using svc::SimResponse;
using svc::SimService;

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    SimService service;

    std::printf("media station: 8-program MPEG-4-style mix, 8 threads, "
                "decoupled hierarchy\n");

    // One request per machine, each ISA paired with its best fetch
    // policy (the paper's headline configuration). The requests are
    // plain data — serialize them with toJson() and they are exactly
    // what `momsim batch` accepts on stdin.
    for (const char *isaName : { "mmx", "mom" }) {
        SimRequest req;
        req.id = std::string("media-station-") + isaName;
        req.isas = { isaName };
        req.threads = { 8 };
        req.memModels = { "decoupled" };
        req.policies = { std::strcmp(isaName, "mmx") == 0 ? "icount"
                                                          : "ocount" };
        req.quick = quick;

        SimResponse resp = service.submit(req);
        if (!resp.ok) {
            std::printf("request %s failed: [%s] %s\n", req.id.c_str(),
                        resp.errorCode.c_str(),
                        resp.errorMessage.c_str());
            return 1;
        }
        for (const driver::ResultRow &r : resp.rows) {
            std::printf("\nSMT+%s, %d threads, %s hierarchy, %s "
                        "fetch:\n", isa::toString(r.simd), r.threads,
                        toString(r.memModel), toString(r.policy));
            std::printf("  cycles: %llu   completions: %d\n",
                        static_cast<unsigned long long>(r.run.cycles),
                        r.run.completions);
            std::printf("  IPC %.2f   EIPC %.2f\n", r.run.ipc,
                        r.run.eipc);
            std::printf("  I-cache hit %.1f%%   L1 hit %.1f%%   L1 "
                        "latency %.2f cyc\n", 100 * r.run.icacheHitRate,
                        100 * r.run.l1HitRate, r.run.l1AvgLatency);
            std::printf("  branch mispredicts: %llu / %llu cond "
                        "branches\n",
                        static_cast<unsigned long long>(
                            r.run.mispredicts),
                        static_cast<unsigned long long>(
                            r.run.condBranches));
        }
        std::printf("  (request %s: %zu point(s), %.0f ms)\n",
                    resp.id.c_str(), resp.rows.size(), resp.wallMs);
    }
    return 0;
}
