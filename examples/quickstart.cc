/**
 * @file
 * Quickstart: build a small media program with the emulation library,
 * run it on a 2-thread SMT+MOM core with the real memory hierarchy, and
 * print the headline metrics.
 *
 *   $ ./example_quickstart
 */

#include <cstdio>

#include "core/simulation.hh"
#include "trace/mom_emitter.hh"
#include "trace/packed.hh"
#include "trace/scalar_emitter.hh"

using namespace momsim;

int
main()
{
    // 1. Author a tiny streaming kernel against the emulation library:
    //    y[i] = clamp(x[i] + 10) over a 64 KB buffer, in MOM streams.
    trace::TraceBuilder tb("quickstart", isa::SimdIsa::Mom, 16u << 20);
    trace::ScalarEmitter s(tb);
    trace::MomEmitter mv(tb);

    uint32_t src = tb.alloc(64 * 1024);
    uint32_t dst = tb.alloc(64 * 1024);
    for (uint32_t i = 0; i < 64 * 1024; ++i)
        tb.poke8(src + i, static_cast<uint8_t>(i * 7));

    mv.setLen(s.imm(16));
    trace::IVal in = s.imm(static_cast<int32_t>(src));
    trace::IVal out = s.imm(static_cast<int32_t>(dst));
    trace::IVal count = s.imm(64 * 1024 / (16 * 4));
    uint32_t head = s.loopHead();
    int iters = 64 * 1024 / (16 * 4);
    for (int i = 0; i < iters; ++i) {
        trace::SVal px = mv.loadUB2QH(in, 0, 4);        // 64 pixels
        trace::SVal brighter =
            mv.addVSQH(px, { trace::splatW(10), isa::mmxReg(0) });
        mv.storeQH2UB(out, 0, 4, brighter);
        in = s.addi(in, 64);
        out = s.addi(out, 64);
        count = s.subi(count, 1);
        s.loopBack(head, count, i + 1 < iters);
    }
    trace::Program prog = tb.take();

    auto mix = prog.mix();
    std::printf("program: %zu records, %llu equivalent instructions\n",
                prog.size(),
                static_cast<unsigned long long>(mix.eqInsts));
    std::printf("mix: %.0f%% int, %.0f%% simd, %.0f%% mem\n",
                100 * mix.intPct(), 100 * mix.simdPct(),
                100 * mix.memPct());

    // 2. Run two copies of it on a 2-thread SMT+MOM processor with the
    //    paper's conventional memory hierarchy.
    cpu::CoreConfig cfg = cpu::CoreConfig::preset(2, isa::SimdIsa::Mom);
    std::vector<core::WorkloadProgram> rotation(
        2, core::WorkloadProgram{ &prog, mix.eqInsts });
    core::Simulation sim(cfg, mem::MemModel::Conventional, rotation);
    core::RunResult res = sim.run();

    std::printf("\nsimulated %llu cycles\n",
                static_cast<unsigned long long>(res.cycles));
    std::printf("IPC (equivalent instructions/cycle): %.2f\n", res.ipc);
    std::printf("L1 hit rate: %.1f%%, avg L1 latency: %.2f cycles\n",
                100 * res.l1HitRate, res.l1AvgLatency);
    std::printf("verify: dst[0]=%u dst[100]=%u (expected 10 and 198)\n",
                0u + 10u, (100u * 7u) % 256u + 10u);
    return 0;
}
