/**
 * @file
 * Shows that the workload layer is a real codec library: encodes and
 * decodes video, an image and speech, reporting quality metrics and
 * compressed sizes (all computed through the simulated programs'
 * emulation-library execution).
 *
 *   $ ./example_codec_roundtrip
 */

#include <cstdio>

#include "workloads/gsm.hh"
#include "workloads/jpeg.hh"
#include "workloads/mesa.hh"
#include "workloads/mpeg2.hh"

using namespace momsim;
using namespace momsim::workloads;

int
main()
{
    constexpr uint32_t base = 16u << 20;

    // ---- MPEG-2 ----
    VideoConfig vcfg;
    vcfg.width = 96;
    vcfg.height = 96;
    vcfg.frames = 3;
    Mpeg2Bitstream stream;
    buildMpeg2Encoder(isa::SimdIsa::Mom, base, vcfg, &stream);
    Mpeg2Decoded dec;
    buildMpeg2Decoder(isa::SimdIsa::Mom, base + (32u << 20), stream, &dec);
    std::printf("MPEG-2: %dx%d x%d frames -> %zu bytes (%.2f bpp)\n",
                vcfg.width, vcfg.height, vcfg.frames, stream.bytes.size(),
                8.0 * static_cast<double>(stream.bytes.size()) /
                    (vcfg.width * vcfg.height * vcfg.frames));
    for (size_t f = 0; f < dec.y.size(); ++f) {
        std::printf("  frame %zu: PSNR %.1f dB, decoder==encoder recon: "
                    "%s\n", f, planePsnr(stream.origY[f], dec.y[f]),
                    dec.y[f] == stream.reconY[f] ? "yes" : "NO");
    }

    // ---- JPEG ----
    JpegConfig jcfg;
    jcfg.width = 96;
    jcfg.height = 96;
    JpegStream jstream;
    buildJpegEncoder(isa::SimdIsa::Mom, base, jcfg, &jstream);
    JpegDecoded jdec;
    buildJpegDecoder(isa::SimdIsa::Mom, base + (32u << 20), jstream,
                     &jdec);
    std::printf("\nJPEG: %dx%d -> %zu bytes, luma PSNR %.1f dB\n",
                jcfg.width, jcfg.height, jstream.bytes.size(),
                planePsnr(jstream.y, jdec.y));

    // ---- GSM ----
    GsmConfig gcfg;
    gcfg.frames = 12;
    GsmStream gstream;
    buildGsmEncoder(isa::SimdIsa::Mom, base, gcfg, &gstream);
    GsmDecoded gdec;
    buildGsmDecoder(isa::SimdIsa::Mom, base + (32u << 20), gstream,
                    &gdec);
    std::printf("\nGSM: %d frames (%.2f s) -> %zu bytes (%.1f kbit/s), "
                "correlation %.2f\n",
                gcfg.frames, gcfg.frames * 0.02, gstream.bytes.size(),
                static_cast<double>(gstream.bytes.size()) * 8.0 /
                    (gcfg.frames * 0.02) / 1000.0,
                sampleCorrelation(gstream.input, gdec.samples));

    // ---- mesa ----
    MesaConfig mcfg;
    MesaRendered rendered;
    buildMesa(isa::SimdIsa::Mom, base, mcfg, &rendered);
    std::printf("\nmesa: %llu triangles drawn, %llu pixels shaded into "
                "%dx%d\n",
                static_cast<unsigned long long>(rendered.trianglesDrawn),
                static_cast<unsigned long long>(rendered.pixelsShaded),
                rendered.width, rendered.height);
    return 0;
}
